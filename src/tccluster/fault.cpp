#include "tccluster/fault.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "tccluster/cluster.hpp"

namespace tcc::cluster {

const char* to_string(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kLinkDown: return "link-down";
    case FaultEvent::Kind::kCrcStorm: return "crc-storm";
    case FaultEvent::Kind::kEndpointHang: return "endpoint-hang";
    case FaultEvent::Kind::kWarmReset: return "warm-reset";
  }
  return "?";
}

void FaultInjector::note(std::string line) {
  TCC_INFO("fault", "%s", line.c_str());
  log_.push_back(std::move(line));
}

Status FaultInjector::schedule(const FaultEvent& ev) {
  firmware::Machine& m = cluster_.machine();
  switch (ev.kind) {
    case FaultEvent::Kind::kLinkDown:
    case FaultEvent::Kind::kCrcStorm:
      if (ev.link < 0 || ev.link >= m.num_links()) {
        return make_error(ErrorCode::kOutOfRange,
                          strprintf("fault targets plan wire %d; machine has %d",
                                    ev.link, m.num_links()));
      }
      break;
    case FaultEvent::Kind::kEndpointHang:
      if (ev.chip < 0 || ev.chip >= m.num_chips()) {
        return make_error(ErrorCode::kOutOfRange,
                          strprintf("fault targets chip %d; machine has %d", ev.chip,
                                    m.num_chips()));
      }
      break;
    case FaultEvent::Kind::kWarmReset:
      if (ev.supernode < 0 ||
          ev.supernode >= static_cast<int>(m.plan().supernodes().size())) {
        return make_error(ErrorCode::kOutOfRange, "fault targets a bad Supernode");
      }
      if (!(ev.duration > Picoseconds{0})) {
        return make_error(ErrorCode::kInvalidArgument,
                          "a warm reset needs a duration (the board is down "
                          "while it reboots)");
      }
      break;
  }
  if (ev.kind == FaultEvent::Kind::kCrcStorm &&
      (ev.fault_rate < 0.0 || ev.fault_rate > 1.0)) {
    return make_error(ErrorCode::kInvalidArgument, "fault_rate must be in [0, 1]");
  }

  cluster_.engine().schedule_at(ev.at, [this, ev] { fire(ev); });
  if (ev.duration > Picoseconds{0}) {
    cluster_.engine().schedule_at(ev.at + ev.duration, [this, ev] { recover(ev); });
  }
  note(strprintf("armed %s at %.1f us%s", to_string(ev.kind), ev.at.microseconds(),
                 ev.duration > Picoseconds{0}
                     ? strprintf(" (recovery at %.1f us)",
                                 (ev.at + ev.duration).microseconds())
                           .c_str()
                     : " (permanent)"));
  return {};
}

void FaultInjector::fire(const FaultEvent& ev) {
  firmware::Machine& m = cluster_.machine();
  switch (ev.kind) {
    case FaultEvent::Kind::kLinkDown:
      m.link(ev.link).force_down("injected link-down");
      note(strprintf("t=%.1f us: wire %d forced down", ev.at.microseconds(), ev.link));
      break;
    case FaultEvent::Kind::kCrcStorm:
      note(strprintf("t=%.1f us: wire %d CRC storm begins (rate %.2f, was %.2f)",
                     ev.at.microseconds(), ev.link, ev.fault_rate,
                     m.link(ev.link).medium().fault_rate));
      m.link(ev.link).medium().fault_rate = ev.fault_rate;
      break;
    case FaultEvent::Kind::kEndpointHang:
      cluster_.driver(ev.chip).set_hung(true);
      note(strprintf("t=%.1f us: chip %d hangs", ev.at.microseconds(), ev.chip));
      break;
    case FaultEvent::Kind::kWarmReset: {
      // The board drops off the fabric: its drivers stop heartbeating and
      // every plan wire touching its chips goes down.
      const auto& sn =
          m.plan().supernodes()[static_cast<std::size_t>(ev.supernode)];
      for (int chip : sn.chips) cluster_.driver(chip).set_hung(true);
      for (int i = 0; i < m.num_links(); ++i) {
        const topology::WireSpec& w = m.plan().wires()[static_cast<std::size_t>(i)];
        const bool touches =
            std::find(sn.chips.begin(), sn.chips.end(), w.a.chip) != sn.chips.end() ||
            std::find(sn.chips.begin(), sn.chips.end(), w.b.chip) != sn.chips.end();
        if (touches && m.link(i).up()) m.link(i).force_down("warm reset");
      }
      note(strprintf("t=%.1f us: Supernode %d warm reset", ev.at.microseconds(),
                     ev.supernode));
      break;
    }
  }
}

void FaultInjector::recover(const FaultEvent& ev) {
  firmware::Machine& m = cluster_.machine();
  switch (ev.kind) {
    case FaultEvent::Kind::kLinkDown:
      m.link(ev.link).schedule_retrain();
      note(strprintf("t=%.1f us: wire %d retrain initiated",
                     (ev.at + ev.duration).microseconds(), ev.link));
      break;
    case FaultEvent::Kind::kCrcStorm:
      m.link(ev.link).medium().fault_rate =
          m.plan().wires()[static_cast<std::size_t>(ev.link)].medium.fault_rate;
      note(strprintf("t=%.1f us: wire %d CRC storm ends",
                     (ev.at + ev.duration).microseconds(), ev.link));
      break;
    case FaultEvent::Kind::kEndpointHang:
      cluster_.driver(ev.chip).set_hung(false);
      note(strprintf("t=%.1f us: chip %d resumes",
                     (ev.at + ev.duration).microseconds(), ev.chip));
      break;
    case FaultEvent::Kind::kWarmReset: {
      const auto& sn =
          m.plan().supernodes()[static_cast<std::size_t>(ev.supernode)];
      for (int i = 0; i < m.num_links(); ++i) {
        const topology::WireSpec& w = m.plan().wires()[static_cast<std::size_t>(i)];
        const bool touches =
            std::find(sn.chips.begin(), sn.chips.end(), w.a.chip) != sn.chips.end() ||
            std::find(sn.chips.begin(), sn.chips.end(), w.b.chip) != sn.chips.end();
        if (touches && !m.link(i).up()) m.link(i).schedule_retrain();
      }
      for (int chip : sn.chips) cluster_.driver(chip).set_hung(false);
      note(strprintf("t=%.1f us: Supernode %d back up, links retraining",
                     (ev.at + ev.duration).microseconds(), ev.supernode));
      break;
    }
  }
}

}  // namespace tcc::cluster

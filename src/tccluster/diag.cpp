#include "tccluster/diag.hpp"

#include "common/strings.hpp"
#include "firmware/image.hpp"

namespace tcc::cluster {

std::string link_report(TcCluster& cluster) {
  std::string out = "== links ==\n";
  firmware::Machine& m = cluster.machine();
  for (int i = 0; i < m.num_links(); ++i) {
    ht::HtLink& link = m.link(i);
    const auto& wire = cluster.plan().wires()[static_cast<std::size_t>(i)];
    const ht::LinkRegs& regs = link.side_a().regs();
    out += strprintf(
        "  %-10s <-> %-10s %-9s %2d-bit %-7s %s%s  tx_a=%llu tx_b=%llu retries=%u\n",
        link.side_a().name().c_str(), link.side_b().name().c_str(),
        !regs.init_complete     ? "untrained"
        : wire.tccluster        ? "TCCLUSTER"
        : regs.kind == ht::LinkKind::kCoherent ? "coherent"
                                               : "ncHT",
        static_cast<int>(regs.width), ht::to_string(regs.freq),
        wire.medium.coax_cable ? "coax" : "fr4",
        strprintf("(%.0f\")", wire.medium.length_inches).c_str(),
        static_cast<unsigned long long>(link.side_a().packets_sent()),
        static_cast<unsigned long long>(link.side_b().packets_sent()),
        link.retries());
    if (const ht::LinkTracer* tracer = link.tracer(); tracer != nullptr) {
      out += strprintf("      tracer: %llu recorded, %llu dropped%s\n",
                       static_cast<unsigned long long>(tracer->records().size()),
                       static_cast<unsigned long long>(tracer->dropped()),
                       tracer->dropped() > 0 ? "  ** TRUNCATED **" : "");
    }
  }
  for (std::size_t s = 0; s < cluster.plan().supernodes().size(); ++s) {
    ht::HtLink& sb = m.southbridge_link(static_cast<int>(s));
    out += strprintf("  %-10s <-> %-10s %-9s (boot ROM path)\n",
                     sb.side_a().name().c_str(), sb.side_b().name().c_str(),
                     sb.side_a().regs().init_complete ? "ncHT" : "untrained");
  }
  return out;
}

std::string address_map_report(TcCluster& cluster) {
  std::string out = "== northbridge address maps ==\n";
  for (int c = 0; c < cluster.num_nodes(); ++c) {
    const opteron::NorthbridgeRegs& regs = cluster.machine().chip(c).nb().regs();
    out += strprintf("  chip %d (%s): NodeID=%d tccluster=%s links=0x%x\n", c,
                     cluster.machine().chip(c).name().c_str(), regs.node_id,
                     regs.tccluster_mode ? "on" : "off", regs.tccluster_links);
    for (const auto& d : regs.dram) {
      if (!d.enabled) continue;
      out += strprintf("    DRAM 0x%010llx..0x%010llx -> node %d%s\n",
                       static_cast<unsigned long long>(d.range.base.value()),
                       static_cast<unsigned long long>(d.range.end().value()),
                       d.dst_node, d.dst_node == regs.node_id ? " (local)" : "");
    }
    for (const auto& mm : regs.mmio) {
      if (!mm.enabled) continue;
      out += strprintf("    MMIO 0x%010llx..0x%010llx -> link %d%s\n",
                       static_cast<unsigned long long>(mm.range.base.value()),
                       static_cast<unsigned long long>(mm.range.end().value()),
                       mm.dst_link, mm.non_posted_allowed ? "" : " [posted-only]");
    }
    if (regs.master_aborts || regs.dropped_reads || regs.dropped_broadcasts) {
      out += strprintf("    errors: %llu master aborts, %llu dropped reads, %llu "
                       "dropped broadcasts\n",
                       static_cast<unsigned long long>(regs.master_aborts),
                       static_cast<unsigned long long>(regs.dropped_reads),
                       static_cast<unsigned long long>(regs.dropped_broadcasts));
    }
  }
  return out;
}

std::string mtrr_report(TcCluster& cluster) {
  std::string out = "== MTRRs (core 0 of each chip) ==\n";
  for (int c = 0; c < cluster.num_nodes(); ++c) {
    const opteron::MtrrFile& mtrr = cluster.machine().chip(c).core(0).mtrr();
    out += strprintf("  chip %d: default=%s\n", c,
                     opteron::to_string(mtrr.default_type()));
    for (const auto& e : mtrr.entries()) {
      out += strprintf("    0x%010llx..0x%010llx %s\n",
                       static_cast<unsigned long long>(e.range.base.value()),
                       static_cast<unsigned long long>(e.range.end().value()),
                       opteron::to_string(e.type));
    }
  }
  return out;
}

std::string boot_report(const TcCluster& cluster) {
  std::string out = "== boot trace ==\n";
  for (const auto& rec : cluster.boot_sequencer().trace()) {
    out += strprintf("  %-26s %10.1f us  (%8.1f us)%s%s\n",
                     firmware::to_string(rec.stage), rec.start.microseconds(),
                     (rec.end - rec.start).microseconds(),
                     rec.note.empty() ? "" : "  ", rec.note.c_str());
  }
  return out;
}

std::string health_report(TcCluster& cluster) {
  std::string out = "== health ==\n";
  firmware::Machine& m = cluster.machine();
  for (int i = 0; i < m.num_links(); ++i) {
    ht::HtLink& link = m.link(i);
    if (link.up() && link.failures() == 0 && link.retries() == 0) continue;
    out += strprintf(
        "  wire %d %-10s <-> %-10s %-5s failures=%u retrains=%u crc_errors=%u/%u "
        "retries=%u\n",
        i, link.side_a().name().c_str(), link.side_b().name().c_str(),
        link.up() ? "up" : "DOWN", link.failures(), link.retrains(),
        link.side_a().regs().crc_errors, link.side_b().regs().crc_errors,
        link.retries());
  }
  for (int c = 0; c < cluster.num_nodes(); ++c) {
    TcDriver& d = cluster.driver(c);
    const auto dead = d.dead_peers();
    if (!d.hung() && dead.empty()) continue;
    out += strprintf("  chip %d: %s", c, d.hung() ? "HUNG" : "ok");
    if (!dead.empty()) {
      out += "  dead peers:";
      for (int p : dead) out += strprintf(" %d", p);
    }
    out += "\n";
  }
  for (const std::string& line : cluster.fault_log()) {
    out += "  fault: " + line + "\n";
  }
  if (out == "== health ==\n") out += "  all links up, all peers alive\n";
  // Reliability-layer state: one row per open tcrel endpoint (epoch,
  // sync-in-flight, retransmit-queue depth, cumulative ACK positions).
  for (int c = 0; c < cluster.num_nodes(); ++c) {
    for (ReliableEndpoint* ep : cluster.rel(c).open_endpoints()) {
      const RelStats& st = ep->stats();
      out += strprintf(
          "  rel %d->%d ch%d: epoch=%llu%s unacked=%llu last_ack=%llu "
          "delivered=%llu retransmits=%llu dups=%llu\n",
          c, ep->peer(), static_cast<int>(ep->channel()),
          static_cast<unsigned long long>(ep->epoch()),
          ep->syncing() ? " SYNCING" : "",
          static_cast<unsigned long long>(ep->unacked()),
          static_cast<unsigned long long>(ep->last_acked_seq()),
          static_cast<unsigned long long>(ep->delivered_count()),
          static_cast<unsigned long long>(st.retransmits),
          static_cast<unsigned long long>(st.duplicates_dropped));
    }
  }
  // Upper-layer sections (e.g. tcsvc shard placement) registered through
  // TcCluster::add_diag_section — diag itself stays below those layers.
  out += cluster.diag_sections();
  return out;
}

std::string full_report(TcCluster& cluster) {
  return link_report(cluster) + address_map_report(cluster) + mtrr_report(cluster) +
         boot_report(cluster) + health_report(cluster);
}

}  // namespace tcc::cluster

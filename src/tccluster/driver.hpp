// TcDriver: the simulated equivalent of the paper's Linux device driver (§V
// "Enabling Remote Access" / §VI).
//
// Responsibilities, mirroring the real driver:
//  * verify the firmware left the machine in TCCluster state (links
//    non-coherent, NodeID 0, remote apertures mapped, interrupts suppressed),
//  * reserve and type the receive-ring region (uncacheable — TCCluster
//    writes cannot invalidate caches on the receiver),
//  * hand out page-granular mappings of remote apertures (write-only) and of
//    local shared memory (read/write),
//  * expose the layout constants the message library builds on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "firmware/machine.hpp"

namespace tcc::cluster {

/// Ring geometry (§IV.A: "each node has to allocate a 4 KB ring buffer for
/// each endpoint it wants to communicate with").
inline constexpr std::uint64_t kRingBytes = 4096;
inline constexpr std::uint64_t kSlotBytes = 64;
/// Slot 0 of each ring is the control block (remote-written ack counter);
/// the remaining 63 slots carry messages.
inline constexpr int kDataSlots = 63;

/// Layout of the control block (slot 0) of ring(owner, sender): every word
/// is written remotely by `sender` and read locally by `owner`, so all four
/// travel the same posted path (same-VC ordering holds between them):
///   +0   tcmsg cumulative slots-consumed ack — `sender`'s count of slots it
///        consumed from the opposite-direction ring (flow control),
///   +8   driver keepalive beat (kApp channel only),
///   +16  tcrel cumulative delivered-message ack (reliable.hpp),
///   +24  tcrel membership-epoch word (low 32 bits epoch, bit 32 sync flag).
/// Disjoint words, so the layers never race each other.
inline constexpr std::uint64_t kHeartbeatOffset = 8;
inline constexpr std::uint64_t kRelAckOffset = 16;
inline constexpr std::uint64_t kRelEpochOffset = 24;

/// Independent ring channels per endpoint pair. Channel 0 carries
/// application/MPI traffic; 1 and 2 carry PGAS active-message requests and
/// responses (each ring has exactly one consumer, so the channels never
/// steal each other's messages).
inline constexpr int kNumChannels = 3;
enum class RingChannel : int { kApp = 0, kPgasRequest = 1, kPgasResponse = 2 };

/// A write-only user-space view of remote memory.
class RemoteWindow {
 public:
  RemoteWindow() = default;
  RemoteWindow(AddrRange range, int home_chip) : range_(range), home_chip_(home_chip) {}

  [[nodiscard]] const AddrRange& range() const { return range_; }
  [[nodiscard]] int home_chip() const { return home_chip_; }
  [[nodiscard]] PhysAddr at(std::uint64_t offset) const {
    TCC_ASSERT(offset < range_.size, "offset outside the mapped window");
    return range_.base + offset;
  }

 private:
  AddrRange range_;
  int home_chip_ = -1;
};

/// A read/write view of local (or Supernode-local) memory.
class LocalWindow {
 public:
  LocalWindow() = default;
  explicit LocalWindow(AddrRange range) : range_(range) {}
  [[nodiscard]] const AddrRange& range() const { return range_; }
  [[nodiscard]] PhysAddr at(std::uint64_t offset) const {
    TCC_ASSERT(offset < range_.size, "offset outside the mapped window");
    return range_.base + offset;
  }

 private:
  AddrRange range_;
};

class TcDriver {
 public:
  /// One driver instance per chip ("node" in paper terms).
  TcDriver(firmware::Machine& machine, int chip);

  /// Module load: precondition checks + ring-region setup. Must run after
  /// the firmware boot completed.
  Status load();

  [[nodiscard]] bool loaded() const { return loaded_; }
  [[nodiscard]] int chip() const { return chip_; }

  // ---- layout ---------------------------------------------------------------

  /// The receive-ring region of `owner_chip` (at the bottom of its DRAM):
  /// one kRingBytes ring per (possible sender, channel).
  [[nodiscard]] AddrRange ring_region(int owner_chip) const;

  /// Ring inside `owner_chip`'s memory that `sender_chip` writes into.
  [[nodiscard]] AddrRange ring(int owner_chip, int sender_chip,
                               RingChannel channel = RingChannel::kApp) const;

  /// Local shared (rendezvous) region: uncacheable, remotely writable.
  [[nodiscard]] AddrRange shared_region(int owner_chip) const;

  /// Bytes of shared region per node (configurable before load()).
  void set_shared_bytes(std::uint64_t bytes) { shared_bytes_ = bytes; }
  [[nodiscard]] std::uint64_t shared_bytes() const { return shared_bytes_; }

  // ---- mappings --------------------------------------------------------------

  /// Map (part of) a remote node's ring/shared space for writing. Page
  /// granular; rejects local addresses and unreachable nodes.
  [[nodiscard]] Result<RemoteWindow> map_remote(int target_chip, std::uint64_t offset,
                                                std::uint64_t bytes);

  /// Map local memory (for polling receive rings / reading rendezvous data).
  [[nodiscard]] Result<LocalWindow> map_local(std::uint64_t offset, std::uint64_t bytes);

  // ---- keepalive ---------------------------------------------------------------

  /// Liveness record for one peer, as this driver last judged it.
  struct PeerHealth {
    bool alive = true;  ///< optimistic until a timeout proves otherwise
    std::uint64_t beats_seen = 0;
    Picoseconds last_progress{};
  };

  /// Start the driver keepalive thread: every `interval` it remote-writes an
  /// incrementing beat into each peer's control block and checks the beats
  /// peers wrote here; a peer silent for longer than `timeout` is declared
  /// dead (tcmsg alone cannot tell — it has no retransmit and polls forever).
  /// The process runs until stop_keepalive(), so tests driving engine.run()
  /// to completion must stop it (or use run_until).
  ///
  /// `domain` bounds the monitoring set: beats go to (and verdicts form
  /// about) only those chips. Empty means every chip — fine on a handful
  /// of nodes, but a beat round is a sequential remote store per peer, so
  /// on a large fabric an all-to-all round cannot even finish within a
  /// tight interval. Services name the peers they actually judge instead;
  /// chips outside the domain stay optimistically alive.
  void start_keepalive(Picoseconds interval, Picoseconds timeout,
                       std::vector<int> domain = {});
  /// Grow a running keepalive's monitoring domain (a node admitted after
  /// start). No-op if already monitored; the new peer starts optimistically
  /// alive and is beaten from the next round on.
  void add_keepalive_peer(int peer_chip);
  /// Verdict edges: invoked whenever the keepalive flips a peer's liveness
  /// (alive -> dead on a missed-beat timeout, dead -> alive on the first
  /// fresh beat). Membership layers hook this to evict/readmit. One callback
  /// per driver; replaces any previous one.
  void set_verdict_callback(std::function<void(int peer, bool alive)> cb) {
    verdict_cb_ = std::move(cb);
  }
  void stop_keepalive() {
    ka_stop_ = true;
    // If the process is mid-sleep, cut it short so it observes the stop flag
    // now; the cancelled interval timer never fires.
    (void)machine_.engine().wake(ka_sleep_);
  }
  [[nodiscard]] bool keepalive_running() const { return ka_running_; }

  /// Fault injection: a hung driver stops emitting heartbeats (its peers'
  /// keepalive declares it dead) but keeps judging others.
  void set_hung(bool hung) { hung_ = hung; }
  [[nodiscard]] bool hung() const { return hung_; }

  /// This driver's current verdict on `peer_chip` (optimistic before the
  /// keepalive gathered evidence).
  [[nodiscard]] bool peer_alive(int peer_chip) const {
    return peers_.empty() || peers_.at(static_cast<std::size_t>(peer_chip)).alive;
  }
  /// Peers currently considered dead, ascending.
  [[nodiscard]] std::vector<int> dead_peers() const;

  // ---- diagnostics -------------------------------------------------------------

  /// The precondition report produced by load() (one line per check).
  [[nodiscard]] const std::vector<std::string>& probe_log() const { return probe_log_; }

 private:
  [[nodiscard]] bool same_supernode(int other_chip) const;
  [[nodiscard]] sim::Task<void> keepalive_process();

  firmware::Machine& machine_;
  int chip_;
  std::uint64_t shared_bytes_ = 4_MiB;
  bool loaded_ = false;
  std::vector<std::string> probe_log_;

  bool hung_ = false;
  bool ka_running_ = false;
  bool ka_stop_ = false;
  sim::TimerHandle ka_sleep_;  ///< armed while the beat loop sleeps
  Picoseconds ka_interval_{};
  Picoseconds ka_timeout_{};
  std::uint64_t ka_beat_ = 0;
  std::vector<PeerHealth> peers_;  // indexed by chip; empty until started
  std::vector<int> ka_domain_;     // chips beaten/judged; see start_keepalive()
  std::function<void(int, bool)> verdict_cb_;  // liveness edges; may be empty
};

}  // namespace tcc::cluster

#include "tccluster/reliable.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "opteron/timing.hpp"
#include "telemetry/metrics.hpp"

namespace tcc::cluster {

#if TCC_TELEMETRY_ENABLED
namespace {

/// Reliability-layer accounting aggregated across every endpoint in the
/// process (per-endpoint numbers stay in ReliableEndpoint::stats()).
struct RelMetrics {
  telemetry::Counter& sends =
      telemetry::MetricsRegistry::global().counter("tccluster.rel.sends");
  telemetry::Counter& delivered =
      telemetry::MetricsRegistry::global().counter("tccluster.rel.delivered");
  telemetry::Counter& acked =
      telemetry::MetricsRegistry::global().counter("tccluster.rel.acked");
  telemetry::Counter& retransmits = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.retransmits");
  telemetry::Counter& duplicates_dropped = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.duplicates_dropped");
  telemetry::Counter& stale_epoch_drops = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.stale_epoch_drops");
  telemetry::Counter& gap_drops =
      telemetry::MetricsRegistry::global().counter("tccluster.rel.gap_drops");
  telemetry::Counter& backpressure_stalls = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.backpressure_stalls");
  telemetry::Counter& epoch_bumps = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.epoch_bumps");
  telemetry::Counter& flushed =
      telemetry::MetricsRegistry::global().counter("tccluster.rel.flushed");
  // Batched cumulative-ACK publication.
  telemetry::Counter& ack_batch_published = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.ack_batch.published");
  telemetry::Counter& ack_batch_deferred = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.ack_batch.deferred");
  telemetry::Histogram& ack_batch_size = telemetry::MetricsRegistry::global().histogram(
      "tccluster.rel.ack_batch.size");
  // Packed line-groups handed to the raw ring by the drain path.
  telemetry::Counter& groups_sent = telemetry::MetricsRegistry::global().counter(
      "tccluster.rel.groups_sent");
};

RelMetrics& rel_metrics() {
  static RelMetrics m;
  return m;
}

}  // namespace
#endif  // TCC_TELEMETRY_ENABLED

void register_reliable_metrics() { TCC_METRIC((void)rel_metrics()); }

const char* to_string(DeliveryPolicy p) {
  switch (p) {
    case DeliveryPolicy::kReplay: return "replay";
    case DeliveryPolicy::kFlush: return "flush";
  }
  return "?";
}

namespace {

/// Epoch control word: low 32 bits epoch, bit 32 "sync in progress".
constexpr std::uint64_t kEpochMask = 0xffffffffull;
constexpr std::uint64_t kSyncFlag = std::uint64_t{1} << 32;

// The whole rel header rides in the raw marker tag (MsgSlot: the high 32
// bits of the word every receive poll loads anyway), so reliability costs
// zero extra payload bytes and zero extra uncacheable reads per message:
//
//   bit  31     : kTagRelFlag — identifies a rel frame
//   bits 25..29 : sender's seq_bits (config cross-check, 1..16)
//   bit  24     : MsgKind (0 data, 1 gap mark)
//   bits 16..23 : sender epoch, low 8 bits (full epoch is in the control
//                 word; 8 bits are ample to reject stale in-flight frames —
//                 the ring is reset on every bump, so live frames can only
//                 ever be a couple of epochs apart)
//   bits  0..15 : wire sequence number, masked to seq_bits
constexpr std::uint32_t kTagRelFlag = 1u << 31;
constexpr std::uint32_t kTagBitsShift = 25;
constexpr std::uint32_t kTagBitsMask = 0x1f;
constexpr std::uint32_t kTagKindBit = 1u << 24;
constexpr std::uint32_t kTagEpochShift = 16;
constexpr std::uint32_t kTagEpochMask = 0xff;
constexpr std::uint32_t kTagSeqMask = 0xffff;

}  // namespace

ReliableEndpoint::ReliableEndpoint(TcDriver& driver, opteron::Core& core,
                                   int peer_chip, RingChannel channel, RelConfig cfg)
    : driver_(driver),
      core_(core),
      peer_(peer_chip),
      channel_(channel),
      cfg_(cfg),
      raw_(driver, core, peer_chip, channel),
      tx_mutex_(core.engine()),
      rx_mutex_(core.engine()) {
  TCC_ASSERT(cfg_.seq_bits >= 2 && cfg_.seq_bits <= 16,
             "seq_bits out of range (the wire seq lives in 16 tag bits)");
  TCC_ASSERT(cfg_.window >= 1 &&
                 cfg_.window < (std::uint64_t{1} << (cfg_.seq_bits - 1)),
             "window must stay below 2^(seq_bits-1) for unambiguous deltas");
  const AddrRange rx_ring = driver.ring(driver.chip(), peer_chip, channel);
  const AddrRange tx_ring = driver.ring(peer_chip, driver.chip(), channel);
  ack_in_ = rx_ring.base + kRelAckOffset;
  epoch_in_ = rx_ring.base + kRelEpochOffset;
  ack_out_ = tx_ring.base + kRelAckOffset;
  epoch_out_ = tx_ring.base + kRelEpochOffset;
  last_tx_progress_ = core.engine().now();
}

ReliableEndpoint::~ReliableEndpoint() {
  *alive_ = false;
  (void)core_.engine().cancel(ack_timer_);
}

std::uint32_t ReliableEndpoint::make_tag(std::uint64_t seq, MsgKind kind) const {
  return kTagRelFlag |
         (static_cast<std::uint32_t>(cfg_.seq_bits) << kTagBitsShift) |
         (kind == MsgKind::kGapMark ? kTagKindBit : 0u) |
         (static_cast<std::uint32_t>(local_epoch_ & kTagEpochMask)
          << kTagEpochShift) |
         static_cast<std::uint32_t>(seq & seq_mask() & kTagSeqMask);
}

void ReliableEndpoint::record(RelEvent::Kind kind, std::uint64_t a, std::uint64_t b) {
  if (events_.size() >= cfg_.max_events) {
    ++events_dropped_;
    return;
  }
  events_.push_back(RelEvent{kind, core_.engine().now(), a, b});
}

sim::Task<bool> ReliableEndpoint::transmit(std::uint64_t seq, MsgKind kind,
                                           std::span<const std::uint8_t> payload) {
  // Caller holds tx_mutex_. Piggyback the cumulative delivered-count ACK on
  // the same posted path as the data: the raw send ends in an sfence, so the
  // ACK word commits with (ahead of) the message. Capture before suspending
  // — a delivery landing mid-store must not be marked acked unseen. While
  // the delayed-ACK timer is armed and the deficit is small, skip it: the
  // timer publishes off the latency path within ack_delay anyway, and the
  // peer's window (>= ack_threshold deep) is in no danger meanwhile.
  if (delivered_ != acked_out_ &&
      (!ack_timer_armed_ || delivered_ - acked_out_ >= cfg_.ack_threshold)) {
    const std::uint64_t ack = delivered_;
    Status s = co_await core_.store_u64(ack_out_, ack);
    if (s.ok()) acked_out_ = ack;
  }
  // The header (seq/epoch/kind) travels in the marker tag, not in payload
  // bytes. Bounded raw op: a wedged ring (peer dead, no credits) must not
  // pin the mutex forever. A refused transmit is fine — the message stays
  // in the retransmit buffer; drain_unsent() retries and, if ACKs truly
  // stalled, the epoch sync replays it.
  const Picoseconds give_up = core_.engine().now() + cfg_.raw_slice;
  Status s = co_await raw_.send(payload, OrderingMode::kWeaklyOrdered, give_up,
                                make_tag(seq, kind));
  co_return s.ok();
}

sim::Task<bool> ReliableEndpoint::transmit_group(const std::vector<Pending>& run) {
  // Caller holds tx_mutex_. Same piggyback-ACK rule as transmit() — the
  // group's closing sfence commits the ACK word with it.
  if (delivered_ != acked_out_ &&
      (!ack_timer_armed_ || delivered_ - acked_out_ >= cfg_.ack_threshold)) {
    const std::uint64_t ack = delivered_;
    Status s = co_await core_.store_u64(ack_out_, ack);
    if (s.ok()) acked_out_ = ack;
  }
  // Each record carries its own rel header in its record tag, so the peer's
  // demux sees the same per-message metadata a plain transmit carries; the
  // group-level marker tag stays internal to the raw layer. Tags are
  // composed before the first suspension (the epoch must not move under
  // them mid-build).
  std::vector<MsgEndpoint::PackedItem> items;
  items.reserve(run.size());
  for (const Pending& p : run) {
    items.push_back(MsgEndpoint::PackedItem{p.payload, make_tag(p.seq, MsgKind::kData)});
  }
  const Picoseconds give_up = core_.engine().now() + cfg_.raw_slice;
  Status s = co_await raw_.send_packed(items, OrderingMode::kWeaklyOrdered, give_up);
  if (s.ok()) {
    ++stats_.groups_sent;
    TCC_METRIC(rel_metrics().groups_sent.inc());
  }
  co_return s.ok();
}

sim::Task<void> ReliableEndpoint::drain_unsent() {
  while (!sync_pending_ && next_unsent_seq_ < next_send_seq_) {
    // Locate the pending entry (it may have vanished: kFlush clears, a
    // forced ACK refresh pops). The deque can shift while transmit()
    // suspends, so work from copies and re-derive state each round.
    std::size_t idx = 0;
    for (; idx < buffer_.size(); ++idx) {
      if (buffer_[idx].seq == next_unsent_seq_) break;
    }
    if (idx == buffer_.size()) {
      ++next_unsent_seq_;
      continue;
    }
    // A backlog is the throughput regime: collect the longest run of
    // consecutive small unsent messages and hand it to the ring as one
    // packed line-group — one doorbell and ~4x the slot density for tiny
    // payloads. (The send() fast path still transmits a lone message
    // directly, so the latency regime never waits for a group to form.)
    std::vector<Pending> run;
    if (cfg_.pack_eligible_bytes > 0) {
      std::uint64_t region = 0;
      std::uint64_t want = next_unsent_seq_;
      for (std::size_t i = idx; i < buffer_.size(); ++i) {
        const Pending& cand = buffer_[i];
        if (cand.seq != want || cand.payload.size() > cfg_.pack_eligible_bytes) break;
        // Rel records always carry a tag (the header channel), so each one
        // costs the base + tag framing on top of its payload.
        const std::uint64_t record =
            MsgSlot::kRecordBase + MsgSlot::kRecordTag + cand.payload.size();
        if (region + record > cfg_.pack_group_bytes) break;
        region += record;
        run.push_back(cand);
        ++want;
      }
    }
    if (run.size() >= 2) {
      const std::uint64_t last_seq = run.back().seq;
      if (!co_await transmit_group(run)) break;
      next_unsent_seq_ = std::max(next_unsent_seq_, last_seq + 1);
      continue;
    }
    const std::uint64_t seq = buffer_[idx].seq;
    const std::vector<std::uint8_t> payload = buffer_[idx].payload;
    if (!co_await transmit(seq, MsgKind::kData, payload)) break;
    next_unsent_seq_ = std::max(next_unsent_seq_, seq + 1);
  }
}

sim::Task<Status> ReliableEndpoint::send(std::span<const std::uint8_t> payload,
                                         std::optional<Picoseconds> deadline) {
  if (payload.size() > kMaxPayloadBytes) {
    co_return make_error(ErrorCode::kInvalidArgument,
                         "payload exceeds kMaxPayloadBytes");
  }
  std::uint64_t seq = 0;
  bool accepted = false;
  for (;;) {
    if (!accepted && buffer_.size() < cfg_.window) {
      auto g = co_await tx_mutex_.scoped();
      if (buffer_.size() < cfg_.window) {
        seq = next_send_seq_++;
        buffer_.push_back(
            Pending{seq, std::vector<std::uint8_t>(payload.begin(), payload.end()), 0});
        accepted = true;
        ++stats_.sent;
        TCC_METRIC(rel_metrics().sends.inc());
        // Transmit only when every earlier message went out (seq order ==
        // transmission order) and no initiated sync is in flight (our raw
        // tx state is stale until the peer adopts); otherwise buffer-only —
        // the wait loop below / replay carries it.
        if (!sync_pending_ && seq == next_unsent_seq_ &&
            co_await transmit(seq, MsgKind::kData, payload)) {
          next_unsent_seq_ = std::max(next_unsent_seq_, seq + 1);
        }
      }
    }
    // Maintenance AFTER the transmit attempt, not before: on a fresh send
    // the periodic uncacheable loads (peer ACK word, epoch word — ~60 ns
    // each through the NB) would otherwise sit between the caller and the
    // data store whenever the cadence has expired, which is exactly the
    // request/response case (the delivering recv returns without a
    // progress beat, and the app thinks for a while before replying).
    // Running them here overlaps them with the message's flight time; the
    // call still performs every duty before returning, so the per-call
    // cadence the recovery machinery relies on is unchanged.
    co_await progress();
    if (accepted) {
      // Acceptance guarantees delivery (kReplay), but do not return while
      // the message has never been handed to the ring: the sending
      // coroutine is often the only process driving recovery, and an
      // untransmitted message with nobody pushing it would strand the
      // receiver. This also restores the raw layer's backpressure feel —
      // bulk streams pace themselves by ring credits, not by the window.
      if (next_unsent_seq_ > seq) co_return Status{};
      if (deadline && core_.engine().now() >= *deadline) {
        // Accepted but not yet transmitted (peer blackout): still OK — it
        // stays buffered and the epoch sync replays it.
        co_return Status{};
      }
      if (!sync_pending_ && next_unsent_seq_ < next_send_seq_) {
        auto g = co_await tx_mutex_.scoped();
        co_await drain_unsent();
        if (next_unsent_seq_ > seq) co_return Status{};
      }
    } else if (deadline && core_.engine().now() >= *deadline) {
      ++stats_.backpressure_stalls;
      TCC_METRIC(rel_metrics().backpressure_stalls.inc());
      record(RelEvent::Kind::kBackpressure,
             buffer_.empty() ? 0 : buffer_.front().seq, 0);
      co_return make_error(ErrorCode::kBackpressure,
                           "reliable send window full; peer not acknowledging");
    }
    co_await core_.compute(opteron::kPollLoopOverhead);
  }
}

sim::Task<Status> ReliableEndpoint::send_bytes(std::span<const std::uint8_t> payload,
                                               std::optional<Picoseconds> deadline) {
  std::size_t off = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(payload.size() - off, kMaxPayloadBytes);
    Status s = co_await send(payload.subspan(off, chunk), deadline);
    if (!s.ok()) co_return s;
    off += chunk;
  } while (off < payload.size());
  co_return Status{};
}

sim::Task<Result<std::vector<std::uint8_t>>> ReliableEndpoint::recv(
    std::optional<Picoseconds> deadline) {
  for (;;) {
    bool want_sync = false;
    {
      auto g = co_await rx_mutex_.scoped();
      // Block inside the raw receive for one slice rather than poll()ing
      // first: within a slice this loop's marker-poll cadence is identical
      // to raw tcmsg (no second marker load, no progress() beat between
      // polls). The slice is SHORT — progress_interval, not raw_slice — so
      // the periodic maintenance loads (peer ACK word, epoch word) run
      // between slices, i.e. while we are waiting anyway and the loads
      // overlap message flight time instead of sitting on the send path:
      // by the time the caller turns around and send()s, its progress
      // throttles are already satisfied.
      Picoseconds slice_end = core_.engine().now() + cfg_.progress_interval;
      if (deadline && *deadline < slice_end) slice_end = *deadline;
      {
        auto r = co_await raw_.recv_tagged(slice_end);
        if (r.ok()) {
          const std::uint32_t tag = r.value().tag;
          std::vector<std::uint8_t>& payload = r.value().bytes;
          if ((tag & kTagRelFlag) != 0 &&
              ((tag >> kTagBitsShift) & kTagBitsMask) ==
                  static_cast<std::uint32_t>(cfg_.seq_bits)) {
            if (((tag >> kTagEpochShift) & kTagEpochMask) !=
                static_cast<std::uint32_t>(local_epoch_ & kTagEpochMask)) {
              ++stats_.stale_epoch_drops;
              TCC_METRIC(rel_metrics().stale_epoch_drops.inc());
              // A stale frame is still a retransmission signal: without
              // this, a receiver fed nothing but stale-epoch packets (CRC
              // storm around a sync) never refreshes its ACK and the sender
              // waits out its full ack_delay/stall clock.
              co_await note_suppressed();
            } else if ((tag & kTagKindBit) != 0) {
              // kGapMark (kFlush sync): the peer discarded its buffer; the
              // payload is its (u64) next send seq — skip the flushed range.
              if (payload.size() >= 8) {
                std::uint64_t next_seq = 0;
                std::memcpy(&next_seq, payload.data(), sizeof next_seq);
                if (next_seq >= 1) delivered_ = std::max(delivered_, next_seq - 1);
              }
              gap_streak_ = 0;
              co_await publish_ack();
            } else {
              const std::uint64_t mask = seq_mask();
              const std::uint64_t expected = (delivered_ + 1) & mask;
              const std::uint64_t diff = ((tag & kTagSeqMask) - expected) & mask;
              if (diff == 0) {
                ++delivered_;
                ++stats_.delivered;
                TCC_METRIC(rel_metrics().delivered.inc());
                gap_streak_ = 0;
                suppressed_since_ack_ = 0;
                // ACK publication stays OFF the delivery fast path: the
                // piggyback, the idle edge below, the threshold, and the
                // delayed-ACK timer (for a caller that never recv()s again
                // after the stream's last message) between them bound how
                // long the peer's window stays charged. While a packed
                // burst is still draining out of the raw unpack queue the
                // threshold publish is deferred too — the burst then costs
                // ONE control-block write at its tail instead of one per
                // ack_threshold — but never past ack_batch_limit.
                arm_ack_timer();
                const std::uint64_t deficit = delivered_ - acked_out_;
                if (deficit >= cfg_.ack_batch_limit) {
                  co_await publish_ack();
                } else if (deficit >= cfg_.ack_threshold) {
                  if (raw_.unpacked_pending() == 0) {
                    co_await publish_ack();
                  } else {
                    ++stats_.ack_deferrals;
                    TCC_METRIC(rel_metrics().ack_batch_deferred.inc());
                  }
                }
                co_return std::move(payload);
              }
              if (diff > (mask >> 1)) {
                // Behind the cursor: a replay raced the original delivery.
                ++stats_.duplicates_dropped;
                TCC_METRIC(rel_metrics().duplicates_dropped.inc());
                // The peer replayed, so our previous ACK publish may have
                // died on a dead link even though acked_out_ claims it went
                // out — count toward the refresh opportunity.
                co_await note_suppressed();
              } else {
                // Ahead of the cursor: we missed a sync (our replayed copy
                // is gone, e.g. both-sides reset raced). Count, and after a
                // streak conclude we must resync ourselves.
                ++stats_.gap_drops;
                TCC_METRIC(rel_metrics().gap_drops.inc());
                if (++gap_streak_ >= cfg_.gap_sync_threshold) want_sync = true;
              }
            }
          }
          // Untagged / config-mismatched frames are dropped silently —
          // both ends are this code, so this only happens mid-epoch-reset.
        } else if (r.error().code == ErrorCode::kProtocolViolation) {
          // Ring desync (length/CRC garbage from a half-landed message):
          // raw tcmsg cannot heal this; an epoch sync resets the ring.
          want_sync = true;
        } else {
          // Slice expired with the ring drained: the idle edge. Push the
          // rel ACK (reopens the peer's window) and the raw slot ack
          // (returns ring credits — a full-size follow-up message needs
          // every slot back) now rather than waiting for thresholds.
          if (delivered_ != acked_out_) co_await publish_ack();
          (void)co_await raw_.flush_acks();
        }
      }
    }
    // Recovery runs on the beats where nothing was delivered (a delivering
    // iteration returned above — under a continuous deliverable stream the
    // peer is by definition healthy, and any sender duties run in our own
    // send()/flush() loops).
    co_await progress();
    if (want_sync && !sync_pending_) co_await initiate_sync();
    if (deadline && core_.engine().now() >= *deadline) {
      co_return make_error(ErrorCode::kTimeout, "rel recv deadline passed");
    }
    co_await core_.compute(opteron::kPollLoopOverhead);
  }
}

sim::Task<bool> ReliableEndpoint::poll() {
  co_await progress();
  auto g = co_await rx_mutex_.scoped();
  co_return co_await raw_.poll();
}

sim::Task<Status> ReliableEndpoint::flush(std::optional<Picoseconds> deadline) {
  for (;;) {
    co_await progress();
    if (buffer_.empty()) co_return Status{};
    if (deadline && core_.engine().now() >= *deadline) {
      co_return make_error(ErrorCode::kTimeout, "rel flush deadline passed");
    }
    co_await core_.compute(opteron::kPollLoopOverhead);
  }
}

sim::Task<void> ReliableEndpoint::refresh_acks() {
  auto v = co_await core_.load_u64(ack_in_);
  if (!v.ok()) co_return;
  if (v.value() > peer_delivered_) {
    peer_delivered_ = v.value();
    last_tx_progress_ = core_.engine().now();
    stall_strikes_ = 0;
    while (!buffer_.empty() && buffer_.front().seq <= peer_delivered_) {
      buffer_.pop_front();
      ++stats_.acked;
      TCC_METRIC(rel_metrics().acked.inc());
    }
    // An acked seq was by definition transmitted (or covered by a gap mark).
    next_unsent_seq_ = std::max(next_unsent_seq_, peer_delivered_ + 1);
  }
}

sim::Task<void> ReliableEndpoint::progress() {
  const Picoseconds now = core_.engine().now();
  if (last_progress_check_ != Picoseconds::zero() &&
      now - last_progress_check_ < cfg_.progress_interval) {
    co_return;
  }
  last_progress_check_ = now;

  // The ACK word only matters with sends outstanding — a quiet transmit
  // side skips the uncacheable load entirely (it is most of what a tight
  // recv/poll loop would otherwise pay per beat). Even with sends
  // outstanding, the load runs on a cadence: eagerly under pressure (window
  // half full, or untransmitted backlog waiting on ring credits), else at
  // ack_refresh_interval — fast enough to keep the stall clock honest, slow
  // enough that a request/response loop does not pay 60 ns per message for
  // bookkeeping that can wait a beat.
  if (!buffer_.empty() || next_unsent_seq_ < next_send_seq_) {
    const bool pressure = buffer_.size() >= cfg_.window / 2 ||
                          next_unsent_seq_ < next_send_seq_;
    if (pressure || last_ack_refresh_ == Picoseconds::zero() ||
        now - last_ack_refresh_ >= cfg_.ack_refresh_interval) {
      last_ack_refresh_ = now;
      co_await refresh_acks();
      // Push any unsent backlog into the ring as credits return.
      if (!sync_pending_ && next_unsent_seq_ < next_send_seq_) {
        auto g = co_await tx_mutex_.scoped();
        co_await drain_unsent();
      }
    }
  }

  // The peer's epoch word only changes around faults; poll it on its own,
  // longer throttle — except while a handshake is in flight, when it is the
  // signal everything waits on.
  if (sync_pending_ || last_epoch_check_ == Picoseconds::zero() ||
      now - last_epoch_check_ >= cfg_.epoch_interval) {
    last_epoch_check_ = now;
    auto w = co_await core_.load_u64(epoch_in_);
    if (w.ok()) {
      const std::uint64_t peer_epoch = w.value() & kEpochMask;
      peer_epoch_seen_ = std::max(peer_epoch_seen_, peer_epoch);
      if (peer_epoch > local_epoch_) {
        co_await adopt_epoch(peer_epoch);
        co_return;
      }
      if (sync_pending_ && sync_armed_ && peer_epoch == local_epoch_) {
        co_await complete_sync();
        co_return;
      }
    }
  }

  // Keepalive rejoin edge: the driver resurrected a dead peer — its rings
  // (and ours) may hold debris from before the blackout; resync.
  const bool alive = driver_.peer_alive(peer_);
  const bool rejoin_edge = !prev_peer_alive_ && alive;
  prev_peer_alive_ = alive;
  if (rejoin_edge && !sync_pending_) {
    co_await initiate_sync();
    co_return;
  }

  // ACK stall: messages outstanding and the cumulative ACK has not moved
  // for stall_timeout — the deadline-driven retransmit trigger. First
  // strikes resend the window in place (go-back-N, needs no cooperation:
  // the receiver drops duplicates and republishes its cumulative ACK, which
  // also recovers a lost ACK word). Only after stall_sync_strikes fruitless
  // resends escalate to an epoch sync — a resend cannot fill the hole a
  // lost posted write leaves in the raw ring, only a ring reset can. The
  // escalation must stay rare: a sync handshake needs the peer to respond,
  // and syncing against a peer that is merely slow to ack (e.g. blocked in
  // its own send) can deadlock a ring of blocked senders.
  if (!buffer_.empty()) {
    if (!sync_pending_ && now - last_tx_progress_ > cfg_.stall_timeout) {
      if (stall_strikes_ >= cfg_.stall_sync_strikes) {
        stall_strikes_ = 0;
        co_await initiate_sync();
        co_return;
      }
      auto g = co_await tx_mutex_.scoped();
      if (!sync_pending_ && !buffer_.empty() &&
          core_.engine().now() - last_tx_progress_ > cfg_.stall_timeout) {
        ++stall_strikes_;
        co_await resend_window();
      }
      co_return;
    }
  } else {
    last_tx_progress_ = now;
    stall_strikes_ = 0;
  }

  // Republish the epoch word while syncing: the publish is a posted write
  // and dies silently on a dead link, so keep beating until the echo.
  if (sync_pending_ && sync_armed_) co_await publish_epoch();
}

sim::Task<void> ReliableEndpoint::initiate_sync() {
  if (sync_pending_) co_return;
  // State flips before any suspension so concurrent progress() calls cannot
  // double-initiate or complete against the pre-bump epoch.
  sync_pending_ = true;
  sync_armed_ = false;
  local_epoch_ = std::max(local_epoch_, peer_epoch_seen_) + 1;
  const std::uint64_t target = local_epoch_;
  ++stats_.epoch_bumps;
  TCC_METRIC(rel_metrics().epoch_bumps.inc());
  record(RelEvent::Kind::kEpochBump, target, 1);
  TCC_INFO("tcrel", "chip %d -> peer %d: initiating epoch %llu sync",
           driver_.chip(), peer_, static_cast<unsigned long long>(target));

  // Let in-flight raw stores from the old epoch land before wiping the ring.
  co_await core_.engine().delay(cfg_.drain_delay);
  if (!sync_pending_ || local_epoch_ != target) co_return;  // superseded

  {
    auto g = co_await rx_mutex_.scoped();
    if (!sync_pending_ || local_epoch_ != target) co_return;  // superseded
    (void)co_await raw_.reset_rx();
    gap_streak_ = 0;
  }
  if (!sync_pending_ || local_epoch_ != target) co_return;
  sync_armed_ = true;
  co_await publish_epoch();
  last_tx_progress_ = core_.engine().now();  // restart the stall clock
}

sim::Task<void> ReliableEndpoint::adopt_epoch(std::uint64_t epoch) {
  auto grx = co_await rx_mutex_.scoped();
  auto gtx = co_await tx_mutex_.scoped();
  if (epoch <= local_epoch_) co_return;  // raced a concurrent adopt/initiate
  // The initiator reset its rx ring before publishing `epoch`, so our tx
  // cursors can restart at a fresh ring; our rx reset mirrors it, and our
  // echo publish (ordered after the reset on the posted path) tells the
  // initiator it may replay.
  (void)co_await raw_.reset_rx();
  raw_.reset_tx();
  local_epoch_ = epoch;
  sync_pending_ = false;
  sync_armed_ = false;
  gap_streak_ = 0;
  ++stats_.epoch_bumps;
  TCC_METRIC(rel_metrics().epoch_bumps.inc());
  record(RelEvent::Kind::kEpochBump, epoch, 0);
  TCC_INFO("tcrel", "chip %d -> peer %d: adopting epoch %llu",
           driver_.chip(), peer_, static_cast<unsigned long long>(epoch));
  co_await publish_epoch();
  co_await replay_unacked();  // tx mutex still held
}

sim::Task<void> ReliableEndpoint::complete_sync() {
  auto gtx = co_await tx_mutex_.scoped();
  if (!sync_pending_) co_return;  // raced a concurrent completion/adoption
  // Peer echoed our epoch: it has reset the ring we transmit into.
  raw_.reset_tx();
  sync_pending_ = false;
  sync_armed_ = false;
  co_await publish_epoch();  // clear the sync flag for diagnostics
  co_await replay_unacked();  // tx mutex still held
}

sim::Task<void> ReliableEndpoint::replay_unacked() {
  // Caller holds tx_mutex_; the epoch handshake just completed, so both raw
  // ring directions are fresh.
  if (cfg_.policy == DeliveryPolicy::kFlush) {
    if (!buffer_.empty()) {
      stats_.flushed += buffer_.size();
      TCC_METRIC(rel_metrics().flushed.inc(buffer_.size()));
      buffer_.clear();
    }
    next_unsent_seq_ = next_send_seq_;
    // Tell the receiver where the stream resumes (u64 payload), even when
    // nothing was flushed — its cursor may predate the blackout.
    std::uint8_t next[8];
    const std::uint64_t next_seq = next_send_seq_;
    std::memcpy(next, &next_seq, sizeof next);
    (void)co_await transmit(0, MsgKind::kGapMark, next);
    last_tx_progress_ = core_.engine().now();
    co_return;
  }
  // kReplay: everything unacked goes out again, in seq order, via the
  // drain path (a full-size message can exceed the fresh ring's credits in
  // one go; the drain stops at the first refusal and progress() resumes it).
  for (Pending& p : buffer_) {
    ++p.retransmits;
    ++stats_.retransmits;
    TCC_METRIC(rel_metrics().retransmits.inc());
    record(RelEvent::Kind::kRetransmit, p.seq, local_epoch_);
  }
  next_unsent_seq_ = buffer_.empty() ? next_send_seq_ : buffer_.front().seq;
  co_await drain_unsent();
  last_tx_progress_ = core_.engine().now();
  stall_strikes_ = 0;
}

sim::Task<void> ReliableEndpoint::resend_window() {
  // Caller holds tx_mutex_. Go-back-N on an ACK stall: rewind the unsent
  // cursor to the oldest unacked message and push the window out again.
  // Entries at/past next_unsent_seq_ were never handed to the ring — they
  // drain as first transmissions, not retransmits.
  for (Pending& p : buffer_) {
    if (p.seq >= next_unsent_seq_) break;
    ++p.retransmits;
    ++stats_.retransmits;
    TCC_METRIC(rel_metrics().retransmits.inc());
    record(RelEvent::Kind::kRetransmit, p.seq, local_epoch_);
  }
  if (!buffer_.empty()) {
    next_unsent_seq_ = std::min(next_unsent_seq_, buffer_.front().seq);
  }
  co_await drain_unsent();
  last_tx_progress_ = core_.engine().now();
}

void ReliableEndpoint::arm_ack_timer() {
  // Delayed ACK: a one-shot engine task that publishes the cumulative ACK if
  // nothing else (piggyback, idle-edge push, threshold) has within
  // cfg_.ack_delay. Arming is a host-side operation, so the delivery fast
  // path pays nothing; the firing runs at an idle instant off every latency
  // path. The alive token covers an endpoint destroyed before it fires.
  if (ack_timer_armed_) return;
  ack_timer_armed_ = true;
  sim::Engine& eng = core_.engine();
  ack_timer_ = eng.schedule_timer(cfg_.ack_delay, [this, &eng, alive = alive_] {
    if (!*alive) return;
    ack_timer_armed_ = false;
    if (delivered_ != acked_out_) {
      eng.spawn_fn([this, alive]() -> sim::Task<void> {
        if (*alive) co_await publish_ack();
      });
    }
  });
}

sim::Task<void> ReliableEndpoint::note_suppressed() {
  // A suppressed (duplicate / stale-epoch) packet proves the peer is
  // retransmitting: our cumulative ACK may never have landed. Republish on
  // the FIRST suppressed packet since the last publish — recovery latency
  // identical to republishing every time — then batch further ones up to
  // ack_threshold, so a CRC-storm flood of duplicates does not pay a
  // control store + sfence per packet.
  ++suppressed_since_ack_;
  const bool first = suppressed_since_ack_ == 1;
  const bool batch = suppressed_since_ack_ >= cfg_.ack_threshold;
  if (!first && !batch) co_return;
  if (batch) suppressed_since_ack_ = 0;
  acked_out_ = delivered_ + 1;  // poison the cache -> real store
  co_await publish_ack();
}

sim::Task<void> ReliableEndpoint::publish_ack() {
  // Capture before suspending: a delivery that lands mid-publish must not be
  // marked acked without its value ever reaching the wire.
  const std::uint64_t value = delivered_;
  if (value == acked_out_) co_return;
  // acked_out_ may be poisoned past value (forced republish); only a real
  // advance counts as batch size.
  TCC_METRIC({
    if (value > acked_out_) {
      rel_metrics().ack_batch_size.add(static_cast<double>(value - acked_out_));
    }
    rel_metrics().ack_batch_published.inc();
  });
  Status s = co_await core_.store_u64(ack_out_, value);
  if (!s.ok()) co_return;
  (void)co_await core_.sfence();
  acked_out_ = value;
  ++stats_.acks_pushed;
  // The ACK is on the wire by some other path (piggyback, threshold, idle
  // edge): a still-armed delayed-ACK timer has nothing left to do, so
  // cancel it instead of letting it fire as a dead event.
  if (ack_timer_armed_ && delivered_ == acked_out_) {
    (void)core_.engine().cancel(ack_timer_);
    ack_timer_armed_ = false;
  }
}

sim::Task<void> ReliableEndpoint::publish_epoch() {
  // Idempotent state broadcast: derive the word from current state, so a
  // publish that raced an adoption still writes something consistent.
  const std::uint64_t word =
      (local_epoch_ & kEpochMask) | (sync_pending_ ? kSyncFlag : 0);
  Status s = co_await core_.store_u64(epoch_out_, word);
  if (!s.ok()) co_return;
  (void)co_await core_.sfence();
}

sim::Task<void> ReliableEndpoint::pump_process() {
  while (!pump_stop_) {
    co_await progress();
    // Publish any tail ACK the app left behind (deliveries below the
    // threshold with no further recv() to piggyback on) — otherwise the
    // peer's window never drains and its stall detector spins forever.
    if (delivered_ != acked_out_) co_await publish_ack();
    co_await core_.engine().delay(cfg_.pump_interval);
  }
  pump_running_ = false;
}

void ReliableEndpoint::start_pump() {
  if (pump_running_) return;
  pump_running_ = true;
  pump_stop_ = false;
  core_.engine().spawn(pump_process());
}

ReliableLibrary::ReliableLibrary(TcDriver& driver, opteron::Core& core, RelConfig cfg)
    : driver_(driver), core_(core), cfg_(cfg) {}

Result<ReliableEndpoint*> ReliableLibrary::connect(int peer_chip, RingChannel channel) {
  if (!driver_.loaded()) {
    return make_error(ErrorCode::kFailedPrecondition, "driver not loaded");
  }
  if (peer_chip == driver_.chip()) {
    return make_error(ErrorCode::kInvalidArgument, "cannot connect to self");
  }
  auto& per_channel = endpoints_[static_cast<int>(channel)];
  if (per_channel.size() < static_cast<std::size_t>(peer_chip + 1)) {
    per_channel.resize(static_cast<std::size_t>(peer_chip + 1));
  }
  auto& slot = per_channel[static_cast<std::size_t>(peer_chip)];
  if (!slot) {
    slot = std::make_unique<ReliableEndpoint>(driver_, core_, peer_chip, channel, cfg_);
  }
  return slot.get();
}

std::vector<ReliableEndpoint*> ReliableLibrary::open_endpoints() {
  std::vector<ReliableEndpoint*> out;
  for (const auto& per_channel : endpoints_) {
    for (const auto& ep : per_channel) {
      if (ep) out.push_back(ep.get());
    }
  }
  return out;
}

void ReliableLibrary::stop_pumps() {
  for (ReliableEndpoint* ep : open_endpoints()) ep->stop_pump();
}

}  // namespace tcc::cluster

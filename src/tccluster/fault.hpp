// Scriptable fault injection: "link 2 dies at t = 40 µs and comes back 100 µs
// later" as data, scheduled on the simulation clock. The injector only pulls
// levers the model already has — HtLink::force_down()/schedule_retrain(),
// LinkMedium::fault_rate, TcDriver::set_hung() — so every scripted scenario
// exercises exactly the recovery machinery production code would run.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tcc::cluster {

class TcCluster;

/// One scripted fault. Times are absolute simulated time.
struct FaultEvent {
  enum class Kind {
    kLinkDown,      ///< hard-fail plan wire `link`; retrain after `duration`
    kCrcStorm,      ///< raise `link`'s CRC fault rate to `fault_rate` for `duration`
    kEndpointHang,  ///< driver on `chip` stops heartbeating for `duration`
    kWarmReset,     ///< reset `supernode`: drivers hang + links drop, then retrain
  };

  Kind kind = Kind::kLinkDown;
  Picoseconds at{};        ///< when the fault strikes
  Picoseconds duration{};  ///< 0 = permanent (no scripted recovery; warm reset
                           ///< requires a duration)
  int link = -1;           ///< plan wire index (kLinkDown, kCrcStorm)
  int chip = -1;           ///< target chip (kEndpointHang)
  int supernode = -1;      ///< target Supernode (kWarmReset)
  double fault_rate = 1.0; ///< CRC fault probability during a kCrcStorm
};

[[nodiscard]] const char* to_string(FaultEvent::Kind k);

/// Validates fault scripts against a booted cluster and arms them as engine
/// events. Keeps a human-readable log of everything it did (for diag and for
/// asserting scenarios in tests).
class FaultInjector {
 public:
  explicit FaultInjector(TcCluster& cluster) : cluster_(cluster) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validate `ev` and schedule its strike (and recovery, if duration > 0).
  Status schedule(const FaultEvent& ev);

  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  void fire(const FaultEvent& ev);
  void recover(const FaultEvent& ev);
  void note(std::string line);

  TcCluster& cluster_;
  std::vector<std::string> log_;
};

}  // namespace tcc::cluster

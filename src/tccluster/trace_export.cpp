#include "tccluster/trace_export.hpp"

#include "common/strings.hpp"
#include "firmware/image.hpp"
#include "telemetry/chrome_trace.hpp"

namespace tcc::cluster {

namespace {

// Track layout: pid 0 is the firmware boot sequence, pid 1+i is plan wire i.
// Within a link, tid 0 carries side-A-transmitted packets and tid 1 side-B's,
// so the two directions render as separate rows of one process group.
constexpr int kBootPid = 0;

void export_boot(TcCluster& cluster, telemetry::ChromeTraceWriter& w) {
  w.set_process_name(kBootPid, "firmware boot");
  w.set_thread_name(kBootPid, 0, "stages");
  for (const auto& rec : cluster.boot_sequencer().trace()) {
    telemetry::ChromeTraceWriter::Args args;
    if (!rec.note.empty()) {
      args.push_back(telemetry::ChromeTraceWriter::arg_str("note", rec.note));
    }
    w.begin(kBootPid, 0, rec.start.count(), firmware::to_string(rec.stage), "boot",
            std::move(args));
    w.end(kBootPid, 0, rec.end.count());
  }
}

void export_link(TcCluster& cluster, int link_index,
                 telemetry::ChromeTraceWriter& w) {
  ht::LinkTracer* tracer = cluster.tracer(link_index);
  if (tracer == nullptr) return;
  ht::HtLink& link = cluster.machine().link(link_index);
  const int pid = 1 + link_index;
  const std::string side_a = link.side_a().name();

  w.set_process_name(pid, strprintf("link %d: %s <-> %s", link_index,
                                    side_a.c_str(), link.side_b().name().c_str()));
  w.set_thread_name(pid, 0, "tx " + side_a);
  w.set_thread_name(pid, 1, "tx " + link.side_b().name());

  for (const auto& r : tracer->records()) {
    telemetry::ChromeTraceWriter::Args args;
    args.push_back(telemetry::ChromeTraceWriter::arg_str("vc", ht::to_string(r.vc)));
    args.push_back(telemetry::ChromeTraceWriter::arg_num(
        "size", static_cast<std::uint64_t>(r.size)));
    args.push_back(telemetry::ChromeTraceWriter::arg_str(
        "address", strprintf("0x%llx",
                             static_cast<unsigned long long>(r.address.value()))));
    args.push_back(telemetry::ChromeTraceWriter::arg_num("wire_seq", r.wire_seq));
    if (r.retries > 0) {
      args.push_back(telemetry::ChromeTraceWriter::arg_num(
          "crc_retries", static_cast<std::uint64_t>(r.retries)));
    }
    const int tid = r.from == side_a ? 0 : 1;
    w.complete(pid, tid, r.departed.count(), (r.arrived - r.departed).count(),
               ht::to_string(r.command), r.coherent ? "cHT" : "ncHT",
               std::move(args));
  }

  if (tracer->dropped() > 0) {
    // Mark saturation at the end of the recorded window so the viewer shows
    // where the record stops being complete.
    const Picoseconds at =
        tracer->records().empty() ? Picoseconds::zero()
                                  : tracer->records().back().arrived;
    w.instant(pid, 0, at.count(), "tracer saturated", "meta",
              {telemetry::ChromeTraceWriter::arg_num("dropped", tracer->dropped()),
               telemetry::ChromeTraceWriter::arg_num(
                   "recorded",
                   static_cast<std::uint64_t>(tracer->records().size()))});
  }
}

// Reliability-layer events: one process per chip (pid 1 + num_links + chip),
// instant events for retransmits, epoch bumps and backpressure returns. Only
// chips whose endpoints logged something get a track.
void export_rel(TcCluster& cluster, int chip, telemetry::ChromeTraceWriter& w) {
  const int pid = 1 + cluster.machine().num_links() + chip;
  bool named = false;
  for (ReliableEndpoint* ep : cluster.rel(chip).open_endpoints()) {
    if (ep->events().empty()) continue;
    if (!named) {
      w.set_process_name(pid, strprintf("tcrel chip %d", chip));
      named = true;
    }
    const int tid = ep->peer() * kNumChannels + static_cast<int>(ep->channel());
    w.set_thread_name(pid, tid,
                      strprintf("-> %d ch%d", ep->peer(),
                                static_cast<int>(ep->channel())));
    for (const RelEvent& ev : ep->events()) {
      switch (ev.kind) {
        case RelEvent::Kind::kRetransmit:
          w.instant(pid, tid, ev.at.count(), "rel retransmit", "tcrel",
                    {telemetry::ChromeTraceWriter::arg_num("seq", ev.a),
                     telemetry::ChromeTraceWriter::arg_num("epoch", ev.b)});
          break;
        case RelEvent::Kind::kEpochBump:
          w.instant(pid, tid, ev.at.count(), "rel epoch bump", "tcrel",
                    {telemetry::ChromeTraceWriter::arg_num("epoch", ev.a),
                     telemetry::ChromeTraceWriter::arg_num("initiated", ev.b)});
          break;
        case RelEvent::Kind::kBackpressure:
          w.instant(pid, tid, ev.at.count(), "rel backpressure", "tcrel",
                    {telemetry::ChromeTraceWriter::arg_num("head_seq", ev.a)});
          break;
      }
    }
    if (ep->events_dropped() > 0) {
      w.instant(pid, tid, ep->events().back().at.count(), "rel event log full",
                "meta",
                {telemetry::ChromeTraceWriter::arg_num("dropped",
                                                       ep->events_dropped())});
    }
  }
}

telemetry::ChromeTraceWriter build_trace(TcCluster& cluster) {
  telemetry::ChromeTraceWriter w;
  export_boot(cluster, w);
  for (int i = 0; i < cluster.machine().num_links(); ++i) {
    export_link(cluster, i, w);
  }
  if (cluster.booted()) {
    for (int c = 0; c < cluster.num_nodes(); ++c) {
      export_rel(cluster, c, w);
    }
  }
  return w;
}

}  // namespace

std::string chrome_trace_json(TcCluster& cluster) {
  return build_trace(cluster).json();
}

Status write_chrome_trace(TcCluster& cluster, const std::string& path) {
  if (!cluster.tracing_enabled()) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "tracing was never enabled; call enable_tracing() before boot");
  }
  return build_trace(cluster).write(path);
}

}  // namespace tcc::cluster

#include "tccluster/trace_export.hpp"

#include "common/strings.hpp"
#include "firmware/image.hpp"
#include "telemetry/chrome_trace.hpp"

namespace tcc::cluster {

namespace {

// Track layout: pid 0 is the firmware boot sequence, pid 1+i is plan wire i.
// Within a link, tid 0 carries side-A-transmitted packets and tid 1 side-B's,
// so the two directions render as separate rows of one process group.
constexpr int kBootPid = 0;

void export_boot(TcCluster& cluster, telemetry::ChromeTraceWriter& w) {
  w.set_process_name(kBootPid, "firmware boot");
  w.set_thread_name(kBootPid, 0, "stages");
  for (const auto& rec : cluster.boot_sequencer().trace()) {
    telemetry::ChromeTraceWriter::Args args;
    if (!rec.note.empty()) {
      args.push_back(telemetry::ChromeTraceWriter::arg_str("note", rec.note));
    }
    w.begin(kBootPid, 0, rec.start.count(), firmware::to_string(rec.stage), "boot",
            std::move(args));
    w.end(kBootPid, 0, rec.end.count());
  }
}

void export_link(TcCluster& cluster, int link_index,
                 telemetry::ChromeTraceWriter& w) {
  ht::LinkTracer* tracer = cluster.tracer(link_index);
  if (tracer == nullptr) return;
  ht::HtLink& link = cluster.machine().link(link_index);
  const int pid = 1 + link_index;
  const std::string side_a = link.side_a().name();

  w.set_process_name(pid, strprintf("link %d: %s <-> %s", link_index,
                                    side_a.c_str(), link.side_b().name().c_str()));
  w.set_thread_name(pid, 0, "tx " + side_a);
  w.set_thread_name(pid, 1, "tx " + link.side_b().name());

  for (const auto& r : tracer->records()) {
    telemetry::ChromeTraceWriter::Args args;
    args.push_back(telemetry::ChromeTraceWriter::arg_str("vc", ht::to_string(r.vc)));
    args.push_back(telemetry::ChromeTraceWriter::arg_num(
        "size", static_cast<std::uint64_t>(r.size)));
    args.push_back(telemetry::ChromeTraceWriter::arg_str(
        "address", strprintf("0x%llx",
                             static_cast<unsigned long long>(r.address.value()))));
    args.push_back(telemetry::ChromeTraceWriter::arg_num("wire_seq", r.wire_seq));
    if (r.retries > 0) {
      args.push_back(telemetry::ChromeTraceWriter::arg_num(
          "crc_retries", static_cast<std::uint64_t>(r.retries)));
    }
    const int tid = r.from == side_a ? 0 : 1;
    w.complete(pid, tid, r.departed.count(), (r.arrived - r.departed).count(),
               ht::to_string(r.command), r.coherent ? "cHT" : "ncHT",
               std::move(args));
  }

  if (tracer->dropped() > 0) {
    // Mark saturation at the end of the recorded window so the viewer shows
    // where the record stops being complete.
    const Picoseconds at =
        tracer->records().empty() ? Picoseconds::zero()
                                  : tracer->records().back().arrived;
    w.instant(pid, 0, at.count(), "tracer saturated", "meta",
              {telemetry::ChromeTraceWriter::arg_num("dropped", tracer->dropped()),
               telemetry::ChromeTraceWriter::arg_num(
                   "recorded",
                   static_cast<std::uint64_t>(tracer->records().size()))});
  }
}

telemetry::ChromeTraceWriter build_trace(TcCluster& cluster) {
  telemetry::ChromeTraceWriter w;
  export_boot(cluster, w);
  for (int i = 0; i < cluster.machine().num_links(); ++i) {
    export_link(cluster, i, w);
  }
  return w;
}

}  // namespace

std::string chrome_trace_json(TcCluster& cluster) {
  return build_trace(cluster).json();
}

Status write_chrome_trace(TcCluster& cluster, const std::string& path) {
  if (!cluster.tracing_enabled()) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "tracing was never enabled; call enable_tracing() before boot");
  }
  return build_trace(cluster).write(path);
}

}  // namespace tcc::cluster

#include "tccluster/driver.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "opteron/mtrr.hpp"
#include "telemetry/metrics.hpp"

namespace tcc::cluster {

// Defined in reliable.cpp (declared in reliable.hpp; redeclared here to keep
// the driver translation unit independent of the reliability layer's header).
void register_reliable_metrics();

#if TCC_TELEMETRY_ENABLED
namespace {

/// Driver-level liveness accounting across every TcDriver in the process.
struct DriverMetrics {
  telemetry::Counter& keepalives_sent = telemetry::MetricsRegistry::global().counter(
      "tccluster.driver.keepalives_sent");
  telemetry::Counter& peer_timeouts = telemetry::MetricsRegistry::global().counter(
      "tccluster.driver.peer_timeouts");
};

DriverMetrics& driver_metrics() {
  static DriverMetrics m;
  return m;
}

}  // namespace
#endif  // TCC_TELEMETRY_ENABLED

TcDriver::TcDriver(firmware::Machine& machine, int chip)
    : machine_(machine), chip_(chip) {
  TCC_ASSERT(chip >= 0 && chip < machine.num_chips(), "bad chip index for driver");
}

bool TcDriver::same_supernode(int other_chip) const {
  const auto& chips = machine_.plan().chips();
  return chips[static_cast<std::size_t>(chip_)].supernode ==
         chips[static_cast<std::size_t>(other_chip)].supernode;
}

AddrRange TcDriver::ring_region(int owner_chip) const {
  const auto& cp = machine_.plan().chips().at(static_cast<std::size_t>(owner_chip));
  return AddrRange{cp.dram.base, static_cast<std::uint64_t>(machine_.num_chips()) *
                                     kNumChannels * kRingBytes};
}

AddrRange TcDriver::ring(int owner_chip, int sender_chip, RingChannel channel) const {
  const AddrRange region = ring_region(owner_chip);
  const auto index = static_cast<std::uint64_t>(static_cast<int>(channel)) *
                         static_cast<std::uint64_t>(machine_.num_chips()) +
                     static_cast<std::uint64_t>(sender_chip);
  return AddrRange{region.base + index * kRingBytes, kRingBytes};
}

AddrRange TcDriver::shared_region(int owner_chip) const {
  const AddrRange rings = ring_region(owner_chip);
  return AddrRange{rings.end(), shared_bytes_};
}

Status TcDriver::load() {
  probe_log_.clear();
  const auto& cp = machine_.plan().chips().at(static_cast<std::size_t>(chip_));
  opteron::OpteronChip& chip = machine_.chip(chip_);
  const opteron::NorthbridgeRegs& regs = chip.nb().regs();

  // ---- precondition probes (what the real module checks in sysfs/PCI) ----
  auto fail = [&](std::string msg) {
    probe_log_.push_back("FAIL: " + msg);
    return make_error(ErrorCode::kFailedPrecondition, std::move(msg));
  };

  if (!regs.tccluster_mode) {
    return fail("northbridge is not in TCCluster mode — firmware did not run");
  }
  probe_log_.push_back("ok: TCCluster mode enabled");

  for (int port = 0; port < opteron::kMaxLinks; ++port) {
    if (((cp.tccluster_ports >> port) & 1u) == 0) continue;
    const ht::LinkRegs& lr = chip.endpoint(port).regs();
    if (!lr.init_complete || lr.kind != ht::LinkKind::kNonCoherent) {
      return fail(strprintf("link %d is not a trained non-coherent link", port));
    }
    probe_log_.push_back(strprintf("ok: link %d non-coherent at %s", port,
                                   ht::to_string(lr.freq)));
  }

  if (!regs.suppress_remote_broadcasts) {
    return fail("interrupt broadcasts are not suppressed — custom kernel rule "
                "missing (would storm the network, §VI)");
  }
  probe_log_.push_back("ok: interrupt broadcasts suppressed");

  if (regs.node_id != cp.node_id) {
    return fail("NodeID register does not match the plan");
  }
  probe_log_.push_back(strprintf("ok: NodeID %d", regs.node_id));

  if ((ring_region(chip_).size + shared_bytes_) > cp.dram.size) {
    return fail("DRAM too small for ring + shared regions");
  }

  // ---- memory typing ----
  // Our own receive rings + shared region: uncacheable, so polls always
  // reach DRAM (TCCluster writes cannot invalidate the receiver's caches).
  if (Status s = chip.set_mtrr_all_cores(ring_region(chip_), opteron::MemType::kUncacheable);
      !s.ok()) {
    return s;
  }
  if (Status s = chip.set_mtrr_all_cores(shared_region(chip_), opteron::MemType::kUncacheable);
      !s.ok()) {
    return s;
  }
  // Ring/shared regions of same-Supernode peers: reachable over the coherent
  // fabric, but must be uncacheable too (stores become individual posted
  // writes; no write-combining across the coherent fabric).
  for (int other = 0; other < machine_.num_chips(); ++other) {
    if (other == chip_ || !same_supernode(other)) continue;
    if (Status s =
            chip.set_mtrr_all_cores(ring_region(other), opteron::MemType::kUncacheable);
        !s.ok()) {
      return s;
    }
    if (Status s =
            chip.set_mtrr_all_cores(shared_region(other), opteron::MemType::kUncacheable);
        !s.ok()) {
      return s;
    }
  }
  probe_log_.push_back("ok: ring and shared regions typed UC");

  // Register driver and reliability metrics at load time: the catalogue test
  // diffs the registry against docs/OBSERVABILITY.md after any booted
  // workload, so lazily-registered names would depend on which layers ran.
  TCC_METRIC((void)driver_metrics());
  register_reliable_metrics();
  loaded_ = true;
  return {};
}

void TcDriver::start_keepalive(Picoseconds interval, Picoseconds timeout,
                               std::vector<int> domain) {
  TCC_ASSERT(loaded_, "start_keepalive() needs a loaded driver");
  if (ka_running_) return;
  ka_running_ = true;
  ka_stop_ = false;
  ka_interval_ = interval;
  ka_timeout_ = timeout;
  ka_domain_.clear();
  if (domain.empty()) {
    for (int peer = 0; peer < machine_.num_chips(); ++peer) {
      if (peer != chip_) ka_domain_.push_back(peer);
    }
  } else {
    for (int peer : domain) {
      TCC_ASSERT(peer >= 0 && peer < machine_.num_chips(),
                 "keepalive domain chip out of range");
      if (peer != chip_) ka_domain_.push_back(peer);
    }
  }
  peers_.assign(static_cast<std::size_t>(machine_.num_chips()),
                PeerHealth{true, 0, machine_.engine().now()});
  machine_.engine().spawn(keepalive_process());
}

void TcDriver::add_keepalive_peer(int peer_chip) {
  TCC_ASSERT(peer_chip >= 0 && peer_chip < machine_.num_chips(),
             "keepalive peer out of range");
  if (!ka_running_ || peer_chip == chip_) return;
  for (int peer : ka_domain_) {
    if (peer == peer_chip) return;
  }
  ka_domain_.push_back(peer_chip);
  peers_[static_cast<std::size_t>(peer_chip)] =
      PeerHealth{true, 0, machine_.engine().now()};
}

std::vector<int> TcDriver::dead_peers() const {
  std::vector<int> out;
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    if (static_cast<int>(p) != chip_ && !peers_[p].alive) out.push_back(static_cast<int>(p));
  }
  return out;
}

sim::Task<void> TcDriver::keepalive_process() {
  opteron::Core& core = machine_.chip(chip_).core(0);
  while (!ka_stop_) {
    if (!hung_) {
      // Beat into every peer's control block. A failed/down link means the
      // store never arrives — exactly the lost beat the peer's timeout
      // detects; nothing to handle here.
      ++ka_beat_;
      for (int peer : ka_domain_) {
        const PhysAddr dst =
            ring(peer, chip_, RingChannel::kApp).base + kHeartbeatOffset;
        (void)co_await core.store_u64(dst, ka_beat_);
      }
      (void)co_await core.sfence();  // beats must not linger in a WC buffer
      TCC_METRIC(driver_metrics().keepalives_sent.inc());
    }
    for (int peer : ka_domain_) {
      const PhysAddr src =
          ring(chip_, peer, RingChannel::kApp).base + kHeartbeatOffset;
      auto beat = co_await core.load_u64(src);
      PeerHealth& ph = peers_[static_cast<std::size_t>(peer)];
      if (beat.ok() && beat.value() != ph.beats_seen) {
        const bool was_dead = !ph.alive;
        if (was_dead) {
          TCC_INFO("tcdriver", "chip %d: peer %d is back", chip_, peer);
        }
        ph.beats_seen = beat.value();
        ph.last_progress = core.now();
        ph.alive = true;
        if (was_dead && verdict_cb_) verdict_cb_(peer, true);
      } else if (ph.alive && core.now() - ph.last_progress > ka_timeout_) {
        ph.alive = false;
        TCC_METRIC(driver_metrics().peer_timeouts.inc());
        TCC_WARN("tcdriver", "chip %d: peer %d missed heartbeats for %.1f us — dead",
                 chip_, peer, (core.now() - ph.last_progress).microseconds());
        if (verdict_cb_) verdict_cb_(peer, false);
      }
    }
    // Cancellable sleep: stop_keepalive() wakes us immediately instead of
    // leaving a dead interval timer pending, so engine.run() drains as soon
    // as the rest of the workload finishes.
    co_await machine_.engine().sleep_for(ka_interval_, ka_sleep_);
  }
  ka_running_ = false;
}

Result<RemoteWindow> TcDriver::map_remote(int target_chip, std::uint64_t offset,
                                          std::uint64_t bytes) {
  if (!loaded_) {
    return make_error(ErrorCode::kFailedPrecondition, "driver not loaded");
  }
  if (target_chip == chip_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "map_remote of the local node; use map_local");
  }
  if (target_chip < 0 || target_chip >= machine_.num_chips()) {
    return make_error(ErrorCode::kNotFound, "no such node");
  }
  if (offset % 4096 != 0 || bytes % 4096 != 0 || bytes == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "remote mappings are page granular (§V: page wise memory "
                      "mapping of remote addresses)");
  }
  const auto& target = machine_.plan().chips().at(static_cast<std::size_t>(target_chip));
  const AddrRange window{target.dram.base + offset, bytes};
  if (!target.dram.contains(window)) {
    return make_error(ErrorCode::kOutOfRange, "window exceeds the target node's memory");
  }
  return RemoteWindow{window, target_chip};
}

Result<LocalWindow> TcDriver::map_local(std::uint64_t offset, std::uint64_t bytes) {
  if (!loaded_) {
    return make_error(ErrorCode::kFailedPrecondition, "driver not loaded");
  }
  const auto& cp = machine_.plan().chips().at(static_cast<std::size_t>(chip_));
  const AddrRange window{cp.dram.base + offset, bytes};
  if (!cp.dram.contains(window) || bytes == 0) {
    return make_error(ErrorCode::kOutOfRange, "window exceeds local memory");
  }
  return LocalWindow{window};
}

}  // namespace tcc::cluster

// Cluster diagnostics: human-readable reports of the machine state —
// the moral equivalent of lspci + the BKDG register dump the paper's
// authors must have stared at for weeks.
#pragma once

#include <string>

#include "tccluster/cluster.hpp"

namespace tcc::cluster {

/// Per-link table: endpoints, kind (cHT/ncHT/TCCluster), negotiated width
/// and frequency, medium, packet counters.
[[nodiscard]] std::string link_report(TcCluster& cluster);

/// Per-chip northbridge state: NodeID, DRAM ranges, MMIO interval->port
/// table, TCCluster flags, error counters.
[[nodiscard]] std::string address_map_report(TcCluster& cluster);

/// Per-chip MTRR summary for core 0 (firmware mirrors all cores).
[[nodiscard]] std::string mtrr_report(TcCluster& cluster);

/// The boot trace as a table.
[[nodiscard]] std::string boot_report(const TcCluster& cluster);

/// Fault-domain state: per-link failure/retrain counters and error bits,
/// per-driver hang flags and keepalive verdicts, the fault-injection log.
[[nodiscard]] std::string health_report(TcCluster& cluster);

/// Everything above concatenated.
[[nodiscard]] std::string full_report(TcCluster& cluster);

}  // namespace tcc::cluster

#include "tccluster/msg.hpp"

#include <algorithm>
#include <cstring>

#include "ht/crc.hpp"
#include "opteron/timing.hpp"
#include "telemetry/metrics.hpp"

namespace tcc::cluster {

#if TCC_TELEMETRY_ENABLED
namespace {

/// Message-layer accounting aggregated across every endpoint in the process
/// (per-endpoint numbers stay in MsgEndpoint::stats()). ring_occupancy is
/// sampled in slots at each send, after credits are acquired.
struct MsgMetrics {
  telemetry::Counter& sends =
      telemetry::MetricsRegistry::global().counter("tccluster.msg.sends");
  telemetry::Counter& recvs =
      telemetry::MetricsRegistry::global().counter("tccluster.msg.recvs");
  telemetry::Counter& bytes_sent = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.bytes_sent");
  telemetry::Counter& bytes_received = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.bytes_received");
  telemetry::Counter& credit_stalls = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.credit_stalls");
  telemetry::Counter& acks_sent = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.acks_sent");
  telemetry::Counter& polls =
      telemetry::MetricsRegistry::global().counter("tccluster.msg.polls");
  telemetry::Counter& timeouts =
      telemetry::MetricsRegistry::global().counter("tccluster.msg.timeouts");
  telemetry::Histogram& ring_occupancy = telemetry::MetricsRegistry::global().histogram(
      "tccluster.msg.ring_occupancy");
  // Packed line-groups (doorbell coalescing, see MsgSlot).
  telemetry::Counter& coalesce_groups_sent = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.coalesce.groups_sent");
  telemetry::Counter& coalesce_groups_received =
      telemetry::MetricsRegistry::global().counter(
          "tccluster.msg.coalesce.groups_received");
  telemetry::Counter& coalesce_packed_msgs = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.coalesce.packed_msgs");
  telemetry::Counter& coalesce_flush_full = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.coalesce.flush_full");
  telemetry::Counter& coalesce_flush_timer = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.coalesce.flush_timer");
  telemetry::Counter& coalesce_flush_inline = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.coalesce.flush_inline");
  telemetry::Counter& coalesce_flush_explicit =
      telemetry::MetricsRegistry::global().counter(
          "tccluster.msg.coalesce.flush_explicit");
  telemetry::Histogram& coalesce_group_msgs =
      telemetry::MetricsRegistry::global().histogram(
          "tccluster.msg.coalesce.group_msgs");
  // Adaptive receiver polling (spin -> exponential backoff).
  telemetry::Counter& backoff_entries = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.poll_backoff.entries");
  telemetry::Counter& backoff_sleeps = telemetry::MetricsRegistry::global().counter(
      "tccluster.msg.poll_backoff.sleeps");
  telemetry::Histogram& backoff_sleep_ns = telemetry::MetricsRegistry::global().histogram(
      "tccluster.msg.poll_backoff.sleep_ns");
};

MsgMetrics& msg_metrics() {
  static MsgMetrics m;
  return m;
}

}  // namespace
#endif  // TCC_TELEMETRY_ENABLED

namespace {

/// Slots needed for a plain message payload of `len` bytes.
std::uint64_t slots_for(std::uint32_t len) {
  if (len <= MsgSlot::kFirstPayload) return 1;
  return 1 + (len - MsgSlot::kFirstPayload + MsgSlot::kNextPayload - 1) /
                 MsgSlot::kNextPayload;
}

/// Slots needed for a packed group region of `len` bytes (dense layout:
/// interior slots are all region, no markers — see MsgSlot).
std::uint64_t slots_for_group(std::uint32_t len) {
  if (len <= MsgSlot::kFirstPayload) return 1;
  return 1 + (len - MsgSlot::kFirstPayload + MsgSlot::kGroupNextPayload - 1) /
                 MsgSlot::kGroupNextPayload;
}

/// Append one record (u16 header, optional u32 tag, payload) to a region.
void append_record(std::vector<std::uint8_t>& region, std::uint32_t tag,
                   std::span<const std::uint8_t> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::uint16_t hdr = static_cast<std::uint16_t>(len & MsgSlot::kRecordLenMask);
  if (tag != 0) hdr |= MsgSlot::kRecordTagFlag;
  const std::size_t base = region.size();
  region.resize(base + MsgSlot::record_bytes(tag, len));
  std::memcpy(region.data() + base, &hdr, 2);
  std::size_t off = base + MsgSlot::kRecordBase;
  if (tag != 0) {
    std::memcpy(region.data() + off, &tag, 4);
    off += MsgSlot::kRecordTag;
  }
  if (len != 0) std::memcpy(region.data() + off, payload.data(), len);
}

/// Parse the record at `data` (with `avail` region bytes left). Returns
/// false on a malformed record: truncated header/tag, nonzero reserved
/// bits, or a payload overrunning the region.
bool parse_record(const std::uint8_t* data, std::size_t avail, std::uint32_t* tag,
                  std::uint32_t* len, std::size_t* consumed) {
  if (avail < MsgSlot::kRecordBase) return false;
  std::uint16_t hdr = 0;
  std::memcpy(&hdr, data, 2);
  if ((hdr & MsgSlot::kRecordReserved) != 0) return false;
  std::size_t off = MsgSlot::kRecordBase;
  *tag = 0;
  if ((hdr & MsgSlot::kRecordTagFlag) != 0) {
    if (avail < off + MsgSlot::kRecordTag) return false;
    std::memcpy(tag, data + off, 4);
    off += MsgSlot::kRecordTag;
    if (*tag == 0) return false;  // the sender never flags a zero tag
  }
  *len = hdr & MsgSlot::kRecordLenMask;
  if (*len > avail - off) return false;
  *consumed = off + *len;
  return true;
}

}  // namespace

const char* to_string(OrderingMode m) {
  switch (m) {
    case OrderingMode::kStrict: return "strict";
    case OrderingMode::kWeaklyOrdered: return "weakly-ordered";
  }
  return "?";
}

MsgEndpoint::MsgEndpoint(TcDriver& driver, opteron::Core& core, int peer_chip,
                         RingChannel channel)
    : driver_(driver), core_(core), peer_(peer_chip), channel_(channel) {
  tx_ring_ = driver_.ring(peer_chip, driver_.chip(), channel);
  rx_ring_ = driver_.ring(driver_.chip(), peer_chip, channel);
  tx_ack_ = rx_ring_.base;  // control block of our RX ring, written by peer
  rx_ack_ = tx_ring_.base;  // control block of the TX ring, written by us
}

MsgEndpoint::~MsgEndpoint() {
  *alive_ = false;
  (void)core_.engine().cancel(stage_timer_);
}

// Logical slot -> ring address. Slot 0 is the control block, so data lives in
// physical slots 1..kDataSlots and logical cursors (send_slots_/recv_slots_)
// grow without bound. A message whose slots cross the kDataSlots boundary is
// written high-addresses-first-then-wrap, which is safe because (a) credits
// guarantee the wrapped-onto slots were consumed and marker-zeroed before the
// sender may reuse them, and (b) the receiver's commit point is the LAST
// logical slot's marker — under in-order posted delivery every earlier slot,
// wrapped or not, has landed by then.
PhysAddr MsgEndpoint::tx_slot_addr(std::uint64_t logical_slot) const {
  return tx_ring_.base + kSlotBytes * (1 + logical_slot % kDataSlots);
}

PhysAddr MsgEndpoint::rx_slot_addr(std::uint64_t logical_slot) const {
  return rx_ring_.base + kSlotBytes * (1 + logical_slot % kDataSlots);
}

sim::Task<Status> MsgEndpoint::ordered_store(PhysAddr addr,
                                             std::span<const std::uint8_t> bytes,
                                             OrderingMode mode) {
  // Walk cache-line chunks; strict mode fences after each one (the paper's
  // "after each cache line sized store operation an Sfence instruction is
  // triggered").
  std::size_t done = 0;
  while (done < bytes.size()) {
    const std::uint64_t a = addr.value() + done;
    const std::uint64_t line_end = (a | (kSlotBytes - 1)) + 1;
    const std::size_t chunk =
        std::min<std::size_t>(bytes.size() - done, line_end - a);
    Status s = co_await core_.store_bytes(PhysAddr{a}, bytes.subspan(done, chunk));
    if (!s.ok()) co_return s;
    if (mode == OrderingMode::kStrict) {
      s = co_await core_.sfence();
      if (!s.ok()) co_return s;
    }
    done += chunk;
  }
  co_return Status{};
}

sim::Task<Status> MsgEndpoint::acquire_credits(std::uint64_t slots,
                                               std::optional<Picoseconds> deadline) {
  TCC_ASSERT(slots <= kDataSlots, "message larger than the whole ring");
  bool stalled = false;
  while (send_slots_ + slots - acked_slots_cache_ > kDataSlots) {
    // Refresh the ack counter the peer pushes into our memory.
    auto v = co_await core_.load_u64(tx_ack_);
    if (!v.ok()) co_return v.error();
    acked_slots_cache_ = v.value();
    if (send_slots_ + slots - acked_slots_cache_ <= kDataSlots) break;
    if (deadline.has_value() && core_.engine().now() >= *deadline) {
      ++stats_.timeouts;
      TCC_METRIC(msg_metrics().timeouts.inc());
      co_return make_error(ErrorCode::kTimeout,
                           "send: no ring credits before the deadline");
    }
    if (!stalled) {
      stalled = true;
      ++stats_.credit_stalls;
      TCC_METRIC(msg_metrics().credit_stalls.inc());
    }
    co_await core_.compute(opteron::kPollLoopOverhead);
  }
  co_return Status{};
}

namespace {

/// Advance a message sequence number, skipping values whose low 32 bits are
/// zero — a released slot's marker is 0, so such a sequence could read an
/// empty slot as a message. Sender and receiver apply the same rule, so the
/// cursors stay in lockstep across the wrap.
inline void advance_seq(std::uint64_t& seq) {
  if (((++seq) & MsgSlot::kSeqMask) == 0) ++seq;
}

/// True when a loaded marker word commits `seq` (low-half match; the high
/// half is the application tag and never participates in matching).
inline bool marker_matches(std::uint64_t marker, std::uint64_t seq) {
  return (marker & MsgSlot::kSeqMask) == (seq & MsgSlot::kSeqMask);
}

}  // namespace

sim::Task<Status> MsgEndpoint::send_frame(std::span<const std::uint8_t> payload,
                                          OrderingMode mode,
                                          std::optional<Picoseconds> deadline,
                                          std::uint32_t tag, bool packed) {
  if (payload.size() > (packed ? kMaxGroupBytes : kMaxMessageBytes)) {
    co_return make_error(ErrorCode::kInvalidArgument,
                        "message exceeds kMaxMessageBytes; use send_bytes");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t slots = packed ? slots_for_group(len) : slots_for(len);
  Status s = co_await acquire_credits(slots, deadline);
  if (!s.ok()) co_return s;
  TCC_METRIC(
      msg_metrics().ring_occupancy.add(send_slots_ + slots - acked_slots_cache_));

  const std::uint64_t head = send_slots_;
  const std::uint32_t crc = ~ht::crc32c(payload);  // inverted: see MsgSlot
  const std::uint32_t wire_len = packed ? (len | MsgSlot::kPackedLenFlag) : len;
  const std::uint64_t marker = (static_cast<std::uint64_t>(tag) << 32) |
                               (send_seq_ & MsgSlot::kSeqMask);

  if (packed) {
    // Dense group layout (see MsgSlot): first slot header + 48 B of region,
    // every later slot a full 64 B of region, and ONE marker word — the
    // doorbell — stored last. The WC unit dispatches full lines as they
    // complete and drains stragglers in allocation order, so on the
    // in-order posted channel the doorbell is the final write of the group.
    const PhysAddr first = tx_slot_addr(head);
    std::size_t off = std::min<std::size_t>(len, MsgSlot::kFirstPayload);
    {
      std::uint8_t slot[kSlotBytes] = {};
      std::memcpy(slot + MsgSlot::kLenOffset, &wire_len, 4);
      std::memcpy(slot + MsgSlot::kCrcOffset, &crc, 4);
      if (off != 0) std::memcpy(slot + MsgSlot::kHeaderSize, payload.data(), off);
      s = co_await ordered_store(
          first + MsgSlot::kMarkerSize,
          std::span<const std::uint8_t>(slot + MsgSlot::kMarkerSize,
                                        MsgSlot::kHeaderSize - MsgSlot::kMarkerSize + off),
          mode);
      if (!s.ok()) co_return s;
    }
    for (std::uint64_t i = 1; i < slots; ++i) {
      const std::size_t chunk =
          std::min<std::size_t>(len - off, MsgSlot::kGroupNextPayload);
      s = co_await ordered_store(tx_slot_addr(head + i), payload.subspan(off, chunk),
                                 mode);
      if (!s.ok()) co_return s;
      off += chunk;
    }
    std::uint8_t doorbell[MsgSlot::kMarkerSize];
    std::memcpy(doorbell, &marker, 8);
    s = co_await ordered_store(first, doorbell, mode);
    if (!s.ok()) co_return s;
  } else {
    // Write slots in ascending order, and within each slot the body BEFORE
    // the marker word, so in the common (no WC eviction) case a visible
    // marker implies a visible slot. In-order posted delivery (§IV.A) makes
    // the LAST slot's marker the commit point on the receiver; the receiver
    // still re-validates (see MsgSlot) because eviction of a partially
    // filled WC line can reorder a slot's fragments around its marker.
    std::size_t off = 0;
    for (std::uint64_t i = 0; i < slots; ++i) {
      std::uint8_t slot[kSlotBytes] = {};
      std::memcpy(slot + MsgSlot::kMarkerOffset, &marker, 8);
      std::size_t data_off;
      std::size_t capacity;
      if (i == 0) {
        std::memcpy(slot + MsgSlot::kLenOffset, &wire_len, 4);
        std::memcpy(slot + MsgSlot::kCrcOffset, &crc, 4);
        data_off = MsgSlot::kHeaderSize;
        capacity = MsgSlot::kFirstPayload;
      } else {
        data_off = MsgSlot::kMarkerSize;
        capacity = MsgSlot::kNextPayload;
      }
      const std::size_t chunk = std::min<std::size_t>(payload.size() - off, capacity);
      if (chunk != 0) {  // doorbells have no payload and a possibly-null data()
        std::memcpy(slot + data_off, payload.data() + off, chunk);
      }
      off += chunk;
      const PhysAddr slot_addr = tx_slot_addr(head + i);
      s = co_await ordered_store(
          slot_addr + MsgSlot::kMarkerSize,
          std::span<const std::uint8_t>(slot + MsgSlot::kMarkerSize,
                                        kSlotBytes - MsgSlot::kMarkerSize),
          mode);
      if (!s.ok()) co_return s;
      s = co_await ordered_store(
          slot_addr, std::span<const std::uint8_t>(slot, MsgSlot::kMarkerSize), mode);
      if (!s.ok()) co_return s;
    }
  }
  s = co_await core_.sfence();  // push the tail out of the WC buffers
  if (!s.ok()) co_return s;

  advance_seq(send_seq_);
  send_slots_ += slots;
  co_return Status{};
}

sim::Task<Status> MsgEndpoint::send(std::span<const std::uint8_t> payload,
                                    OrderingMode mode,
                                    std::optional<Picoseconds> deadline,
                                    std::uint32_t tag) {
  if (payload.size() > kMaxMessageBytes) {
    co_return make_error(ErrorCode::kInvalidArgument,
                        "message exceeds kMaxMessageBytes; use send_bytes");
  }
  if (coalesce_.enabled) {
    if (!stage_error_.ok()) {
      // A timer-driven flush failed since the last call; surface it here
      // (the staged messages it covered are gone — posted-write semantics).
      Status e = stage_error_;
      stage_error_ = Status{};
      co_return e;
    }
    if (payload.size() <= coalesce_.eligible_bytes && coalesce_.max_group_msgs >= 2) {
      const std::size_t record = MsgSlot::record_bytes(
          tag, static_cast<std::uint32_t>(payload.size()));
      if (!stage_.empty() &&
          (stage_.size() + record > coalesce_.max_group_bytes ||
           stage_msgs_ >= coalesce_.max_group_msgs)) {
        TCC_METRIC(msg_metrics().coalesce_flush_full.inc());
        Status s = co_await flush_stage(deadline);
        if (!s.ok()) co_return s;
      }
      append_record(stage_, tag, payload);
      ++stage_msgs_;
      stage_payload_bytes_ += payload.size();
      if (stage_.size() + MsgSlot::kRecordBase > coalesce_.max_group_bytes ||
          stage_msgs_ >= coalesce_.max_group_msgs) {
        TCC_METRIC(msg_metrics().coalesce_flush_full.inc());
        co_return co_await flush_stage(deadline);
      }
      arm_stage_timer();
      co_return Status{};
    }
    // Ineligible payload: publish anything staged first so send order is
    // preserved on the wire.
    if (!stage_.empty()) {
      TCC_METRIC(msg_metrics().coalesce_flush_inline.inc());
      Status s = co_await flush_stage(deadline);
      if (!s.ok()) co_return s;
    }
  }
  Status s = co_await send_frame(payload, mode, deadline, tag, /*packed=*/false);
  if (!s.ok()) co_return s;
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  TCC_METRIC(msg_metrics().sends.inc());
  TCC_METRIC(msg_metrics().bytes_sent.inc(payload.size()));
  co_return Status{};
}

sim::Task<Status> MsgEndpoint::send_packed(std::span<const PackedItem> items,
                                           OrderingMode mode,
                                           std::optional<Picoseconds> deadline) {
  if (items.empty()) {
    co_return make_error(ErrorCode::kInvalidArgument, "empty packed group");
  }
  if (coalesce_.enabled && !stage_.empty()) {
    TCC_METRIC(msg_metrics().coalesce_flush_inline.inc());
    Status s = co_await flush_stage(deadline);
    if (!s.ok()) co_return s;
  }
  if (items.size() == 1) {
    // A group of one needs no record framing — send it as a plain message
    // (same doorbell count, fewer bytes on the wire).
    Status s = co_await send_frame(items[0].payload, mode, deadline,
                                   items[0].tag, /*packed=*/false);
    if (!s.ok()) co_return s;
    ++stats_.messages_sent;
    stats_.bytes_sent += items[0].payload.size();
    TCC_METRIC(msg_metrics().sends.inc());
    TCC_METRIC(msg_metrics().bytes_sent.inc(items[0].payload.size()));
    co_return Status{};
  }
  std::size_t region_len = 0;
  for (const PackedItem& it : items) {
    region_len += MsgSlot::record_bytes(it.tag,
                                        static_cast<std::uint32_t>(it.payload.size()));
  }
  if (region_len > kMaxGroupBytes) {
    co_return make_error(ErrorCode::kInvalidArgument,
                         "packed group exceeds kMaxGroupBytes");
  }
  std::vector<std::uint8_t> region;
  region.reserve(region_len);
  std::uint64_t payload_bytes = 0;
  for (const PackedItem& it : items) {
    append_record(region, it.tag, it.payload);
    payload_bytes += it.payload.size();
  }
  Status s = co_await send_frame(region, mode, deadline, /*tag=*/0, /*packed=*/true);
  if (!s.ok()) co_return s;
  ++stats_.groups_sent;
  stats_.messages_sent += items.size();
  stats_.messages_packed += items.size();
  stats_.bytes_sent += payload_bytes;
  TCC_METRIC(msg_metrics().coalesce_groups_sent.inc());
  TCC_METRIC(msg_metrics().coalesce_packed_msgs.inc(items.size()));
  TCC_METRIC(msg_metrics().coalesce_group_msgs.add(
      static_cast<double>(items.size())));
  TCC_METRIC(msg_metrics().sends.inc(items.size()));
  TCC_METRIC(msg_metrics().bytes_sent.inc(payload_bytes));
  co_return Status{};
}

sim::Task<Status> MsgEndpoint::flush_stage(std::optional<Picoseconds> deadline) {
  if (stage_.empty()) co_return Status{};
  // Move the region out before the first suspension: a staged send arriving
  // while the publish is in flight must start a fresh group, not mutate the
  // one on the wire.
  std::vector<std::uint8_t> region = std::move(stage_);
  stage_.clear();
  const std::uint32_t msgs = stage_msgs_;
  const std::uint64_t payload_bytes = stage_payload_bytes_;
  stage_msgs_ = 0;
  stage_payload_bytes_ = 0;
  if (stage_timer_armed_) {
    (void)core_.engine().cancel(stage_timer_);
    stage_timer_armed_ = false;
  }
  if (msgs == 1) {
    // Unwrap a lone record: no group framing, no decode cost at the peer.
    std::uint32_t tag = 0;
    std::uint32_t len = 0;
    std::size_t consumed = 0;
    const bool ok = parse_record(region.data(), region.size(), &tag, &len, &consumed);
    TCC_ASSERT(ok && consumed == region.size(), "stage holds one valid record");
    Status s = co_await send_frame(
        std::span<const std::uint8_t>(region.data() + (consumed - len), len),
        OrderingMode::kWeaklyOrdered, deadline, tag, /*packed=*/false);
    if (!s.ok()) co_return s;
    ++stats_.messages_sent;
    stats_.bytes_sent += len;
    TCC_METRIC(msg_metrics().sends.inc());
    TCC_METRIC(msg_metrics().bytes_sent.inc(len));
    co_return Status{};
  }
  Status s = co_await send_frame(region, OrderingMode::kWeaklyOrdered, deadline,
                                 /*tag=*/0, /*packed=*/true);
  if (!s.ok()) co_return s;
  ++stats_.groups_sent;
  stats_.messages_sent += msgs;
  stats_.messages_packed += msgs;
  stats_.bytes_sent += payload_bytes;
  TCC_METRIC(msg_metrics().coalesce_groups_sent.inc());
  TCC_METRIC(msg_metrics().coalesce_packed_msgs.inc(msgs));
  TCC_METRIC(msg_metrics().coalesce_group_msgs.add(static_cast<double>(msgs)));
  TCC_METRIC(msg_metrics().sends.inc(msgs));
  TCC_METRIC(msg_metrics().bytes_sent.inc(payload_bytes));
  co_return Status{};
}

sim::Task<Status> MsgEndpoint::flush_coalesce(std::optional<Picoseconds> deadline) {
  if (!stage_error_.ok()) {
    Status e = stage_error_;
    stage_error_ = Status{};
    co_return e;
  }
  if (stage_.empty()) co_return Status{};
  TCC_METRIC(msg_metrics().coalesce_flush_explicit.inc());
  co_return co_await flush_stage(deadline);
}

void MsgEndpoint::arm_stage_timer() {
  // One-shot bound on how long a staged message can linger: a caller that
  // stages a burst and then goes quiet still gets its group published within
  // flush_delay. Detached task with an alive token (the endpoint may die
  // first); the flush gets a generous deadline so a wedged ring cannot pin
  // the engine alive forever — failure parks in stage_error_.
  if (stage_timer_armed_) return;
  stage_timer_armed_ = true;
  sim::Engine& eng = core_.engine();
  stage_timer_ = eng.schedule_timer(coalesce_.flush_delay, [this, &eng, alive = alive_] {
    if (!*alive) return;
    stage_timer_armed_ = false;
    if (stage_.empty()) return;
    eng.spawn_fn([this, alive]() -> sim::Task<void> {
      if (!*alive || stage_.empty()) co_return;
      TCC_METRIC(msg_metrics().coalesce_flush_timer.inc());
      const Picoseconds give_up = core_.engine().now() + kSlotSettle;
      Status s = co_await flush_stage(give_up);
      if (!s.ok() && stage_error_.ok()) stage_error_ = s;
    });
  });
}

sim::Task<Status> MsgEndpoint::send_bytes(std::span<const std::uint8_t> payload,
                                          OrderingMode mode) {
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(payload.size() - off, kMaxMessageBytes);
    Status s = co_await send(payload.subspan(off, chunk), mode);
    if (!s.ok()) co_return s;
    off += chunk;
  }
  co_return Status{};
}

std::uint32_t MsgEndpoint::serve_unpacked(std::vector<std::uint8_t>* copy_out,
                                          std::uint32_t* tag_out) {
  TaggedMessage& m = unpacked_.front();
  const auto len = static_cast<std::uint32_t>(m.bytes.size());
  if (tag_out != nullptr) *tag_out = m.tag;
  if (copy_out != nullptr) *copy_out = std::move(m.bytes);
  unpacked_.pop_front();
  ++stats_.messages_received;
  stats_.bytes_received += len;
  TCC_METRIC(msg_metrics().recvs.inc());
  TCC_METRIC(msg_metrics().bytes_received.inc(len));
  return len;
}

sim::Task<Result<std::uint32_t>> MsgEndpoint::recv_impl(
    std::vector<std::uint8_t>* copy_out, std::optional<Picoseconds> deadline,
    std::uint32_t* tag_out) {
  // Sub-messages already decoded from a packed group are served first —
  // zero uncacheable loads per queued message.
  if (!unpacked_.empty()) co_return serve_unpacked(copy_out, tag_out);

  const PhysAddr header_addr = rx_slot_addr(recv_slots_);
  // Poll the marker word in uncacheable local memory (§VI receive path).
  // Spin flat-out for the first kPollSpinPolls misses, then back off
  // exponentially: an idle ring stops costing a 60 ns UC load every ~70 ns,
  // at a detection-delay price capped at kPollBackoffMax.
  bool first_miss = true;
  int misses = 0;
  bool backoff_entered = false;
  Picoseconds backoff = kPollBackoffStart;
  std::uint32_t marker_tag = 0;
  for (;;) {
    auto marker = co_await core_.load_u64(header_addr);
    if (!marker.ok()) co_return marker.error();
    if (marker_matches(marker.value(), recv_seq_)) {
      marker_tag = static_cast<std::uint32_t>(marker.value() >> 32);
      break;
    }
    const Picoseconds now = core_.engine().now();
    if (deadline.has_value() && now >= *deadline) {
      ++stats_.timeouts;
      TCC_METRIC(msg_metrics().timeouts.inc());
      co_return make_error(ErrorCode::kTimeout,
                           "recv: no message before the deadline");
    }
    if (first_miss) {
      // The ring is empty: the sender may be stalled on credits (a max-size
      // message needs every slot). Push any batched acks before waiting, or
      // the pointer exchange deadlocks — the "periodically ... exchange
      // pointer information" rule of §IV.A needs this aperiodic edge.
      first_miss = false;
      if (Status s = co_await flush_acks(); !s.ok()) co_return s.error();
    }
    if (++misses <= kPollSpinPolls) {
      co_await core_.compute(opteron::kPollLoopOverhead);
      continue;
    }
    if (!backoff_entered) {
      backoff_entered = true;
      TCC_METRIC(msg_metrics().backoff_entries.inc());
    }
    Picoseconds sleep = backoff;
    if (deadline.has_value() && *deadline - now < sleep) sleep = *deadline - now;
    ++stats_.backoff_sleeps;
    TCC_METRIC(msg_metrics().backoff_sleeps.inc());
    TCC_METRIC(msg_metrics().backoff_sleep_ns.add(sleep.nanoseconds()));
    co_await core_.compute(sleep);
    backoff = std::min(backoff * 2, kPollBackoffMax);
  }

  // The first marker is an invitation, not a commit (see MsgSlot): validate
  // the whole message and re-poll while any part still looks unflushed.
  // Normally one pass succeeds — partial visibility needs a WC eviction to
  // have split a slot, and resolves within the sender's closing sfence.
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  bool packed = false;
  std::vector<std::uint8_t> group;  // packed-region bytes (groups only)
  for (;;) {
    bool settled = true;
    auto lenword = co_await core_.load_u64(header_addr + MsgSlot::kLenOffset);
    if (!lenword.ok()) co_return lenword.error();
    if (lenword.value() == 0) {
      // The len/CRC word of any message is nonzero (inverted CRC), so zero
      // means that word's fragment has not landed yet.
      settled = false;
    } else {
      std::uint32_t len_raw = 0;
      std::memcpy(&len_raw, &lenword.value(), 4);
      packed = (len_raw & MsgSlot::kPackedLenFlag) != 0;
      len = len_raw & MsgSlot::kLenMask;
      crc = ~static_cast<std::uint32_t>(lenword.value() >> 32);
      if (len > (packed ? MsgEndpoint::kMaxGroupBytes : kMaxMessageBytes)) {
        co_return make_error(ErrorCode::kProtocolViolation, "corrupt message length");
      }
      // Every slot's marker must be visible — the tail alone does not prove
      // the middle slots landed: a partially flushed line can linger in a WC
      // buffer while later slots' full lines dispatch ahead of it. A packed
      // group has no interior markers (dense layout) — its doorbell was the
      // group's LAST write on the in-order channel, so doorbell-visible
      // implies region-visible and the CRC below is the whole check.
      const std::uint64_t slots = packed ? slots_for_group(len) : slots_for(len);
      if (!packed) {
        for (std::uint64_t i = 1; i < slots && settled; ++i) {
          auto m = co_await core_.load_u64(rx_slot_addr(recv_slots_ + i));
          if (!m.ok()) co_return m.error();
          if (!marker_matches(m.value(), recv_seq_)) settled = false;
        }
      }
      // A packed group must always be materialized (the records have to be
      // decoded whatever the caller wanted), so its CRC is always checked;
      // a plain discard skips the copy exactly as before.
      std::vector<std::uint8_t>* sink = packed ? &group : copy_out;
      if (settled && sink != nullptr) {
        sink->resize(len);
        std::size_t off = 0;
        for (std::uint64_t i = 0; i < slots; ++i) {
          std::uint64_t data_off;
          std::size_t capacity;
          if (i == 0) {
            data_off = MsgSlot::kHeaderSize;
            capacity = MsgSlot::kFirstPayload;
          } else if (packed) {
            data_off = 0;
            capacity = MsgSlot::kGroupNextPayload;
          } else {
            data_off = MsgSlot::kMarkerSize;
            capacity = MsgSlot::kNextPayload;
          }
          const std::size_t chunk = std::min<std::size_t>(len - off, capacity);
          Status s = co_await core_.load_bytes(rx_slot_addr(recv_slots_ + i) + data_off,
                                               std::span(sink->data() + off, chunk));
          if (!s.ok()) co_return s.error();
          off += chunk;
        }
        // A mismatch here is almost always a payload fragment still in
        // flight behind its marker, not corruption — keep polling.
        if (ht::crc32c(*sink) != crc) settled = false;
      }
    }
    if (settled) break;
    const Picoseconds now = core_.engine().now();
    if (settle_seq_ != recv_seq_ || settle_since_ == Picoseconds::zero()) {
      settle_seq_ = recv_seq_;
      settle_since_ = now;
    } else if (now - settle_since_ >= kSlotSettle) {
      // Permanently half-written (a link died mid-message and will not
      // resend at this layer): the ring is corrupt; only a reset above
      // (tcrel epoch sync) heals it.
      settle_since_ = Picoseconds::zero();
      co_return make_error(ErrorCode::kProtocolViolation,
                           "message never settled; ring corrupt past the marker");
    }
    // recv_slots_/recv_seq_ stay untouched on every early return, so a
    // retry after deadline or recovery re-polls this same message.
    if (deadline.has_value() && now >= *deadline) {
      ++stats_.timeouts;
      TCC_METRIC(msg_metrics().timeouts.inc());
      co_return make_error(ErrorCode::kTimeout,
                           "recv: message tail missing at the deadline");
    }
    co_await core_.compute(opteron::kPollLoopOverhead);
  }
  settle_since_ = Picoseconds::zero();
  const std::uint64_t slots = packed ? slots_for_group(len) : slots_for(len);

  // Decode a packed group BEFORE consuming its slots: the region passed the
  // group CRC, so these bytes are exactly what the sender published — a
  // malformed record run means a corrupt sender, and the cursors stay put
  // (same contract as a settle expiry: only a reset above heals the ring).
  std::deque<TaggedMessage> decoded;
  if (packed) {
    std::size_t off = 0;
    while (off < len) {
      std::uint32_t rtag = 0;
      std::uint32_t rlen = 0;
      std::size_t consumed = 0;
      if (!parse_record(group.data() + off, len - off, &rtag, &rlen, &consumed)) {
        co_return make_error(ErrorCode::kProtocolViolation,
                             "packed group: malformed record");
      }
      const std::size_t data_at = off + consumed - rlen;
      decoded.push_back(TaggedMessage{
          rtag,
          std::vector<std::uint8_t>(group.begin() + static_cast<std::ptrdiff_t>(data_at),
                                    group.begin() + static_cast<std::ptrdiff_t>(data_at + rlen))});
      off += consumed;
    }
    if (decoded.empty()) {
      co_return make_error(ErrorCode::kProtocolViolation, "packed group: no records");
    }
  }

  // Free the slots ("It then has to overwrite the slot to free it", §IV.A):
  // zero every consumed slot's marker word so no stale sequence number can
  // ever satisfy a future poll.
  for (std::uint64_t i = 0; i < slots; ++i) {
    Status s = co_await core_.store_u64(rx_slot_addr(recv_slots_ + i), 0);
    if (!s.ok()) co_return s.error();
  }

  advance_seq(recv_seq_);
  recv_slots_ += slots;

  std::uint32_t served = 0;
  if (packed) {
    ++stats_.groups_received;
    TCC_METRIC(msg_metrics().coalesce_groups_received.inc());
    unpacked_ = std::move(decoded);
    served = serve_unpacked(copy_out, tag_out);
  } else {
    if (tag_out != nullptr) *tag_out = marker_tag;
    served = len;
    ++stats_.messages_received;
    stats_.bytes_received += len;
    TCC_METRIC(msg_metrics().recvs.inc());
    TCC_METRIC(msg_metrics().bytes_received.inc(len));
  }

  // Periodic pointer exchange for flow control (§IV.A).
  if (recv_slots_ - acked_out_ >= kAckThreshold) {
    if (Status s = co_await flush_acks(); !s.ok()) co_return s.error();
  }
  co_return served;
}

sim::Task<Result<std::vector<std::uint8_t>>> MsgEndpoint::recv(
    std::optional<Picoseconds> deadline) {
  std::vector<std::uint8_t> out;
  auto r = co_await recv_impl(&out, deadline);
  if (!r.ok()) co_return r.error();
  co_return out;
}

sim::Task<Result<std::uint32_t>> MsgEndpoint::recv_discard(
    std::optional<Picoseconds> deadline) {
  co_return co_await recv_impl(nullptr, deadline);
}

sim::Task<Result<MsgEndpoint::TaggedMessage>> MsgEndpoint::recv_tagged(
    std::optional<Picoseconds> deadline) {
  TaggedMessage out;
  auto r = co_await recv_impl(&out.bytes, deadline, &out.tag);
  if (!r.ok()) co_return r.error();
  co_return out;
}

sim::Task<bool> MsgEndpoint::poll() {
  TCC_METRIC(msg_metrics().polls.inc());
  // Decoded-but-unserved sub-messages count as waiting (and cost no load).
  if (!unpacked_.empty()) co_return true;
  auto marker = co_await core_.load_u64(rx_slot_addr(recv_slots_));
  co_return marker.ok() && marker_matches(marker.value(), recv_seq_);
}

sim::Task<Status> MsgEndpoint::flush_acks() {
  if (recv_slots_ == acked_out_) co_return Status{};
  Status s = co_await core_.store_u64(rx_ack_, recv_slots_);
  if (!s.ok()) co_return s;
  s = co_await core_.sfence();  // acks must not linger in a WC buffer
  if (!s.ok()) co_return s;
  acked_out_ = recv_slots_;
  ++stats_.acks_sent;
  TCC_METRIC(msg_metrics().acks_sent.inc());
  co_return Status{};
}

sim::Task<Status> MsgEndpoint::reset_rx() {
  // Zero every data-slot marker so no stale sequence number survives into
  // the next epoch (markers are the only words polls trust).
  for (int i = 0; i < kDataSlots; ++i) {
    Status s = co_await core_.store_u64(
        rx_ring_.base + kSlotBytes * static_cast<std::uint64_t>(1 + i), 0);
    if (!s.ok()) co_return s;
  }
  recv_seq_ = 1;
  recv_slots_ = 0;
  acked_out_ = 0;
  // The settle clock must not survive the epoch: a stale timestamp from a
  // message interrupted mid-settle would otherwise charge the FIRST slot of
  // the new epoch with pre-reset waiting time and could trip the kSlotSettle
  // expiry on a perfectly healthy message.
  settle_since_ = Picoseconds::zero();
  settle_seq_ = 0;
  // Sub-messages decoded but never handed up were never acknowledged above
  // the raw layer either — drop them; the reliable layer replays them.
  unpacked_.clear();
  // Republish a zero slots-consumed ack. Ordered ahead of any later epoch
  // publish on the same posted path, so the peer never resumes sending
  // against a stale credit count.
  Status s = co_await core_.store_u64(rx_ack_, 0);
  if (!s.ok()) co_return s;
  co_return co_await core_.sfence();
}

void MsgEndpoint::reset_tx() {
  send_seq_ = 1;
  send_slots_ = 0;
  acked_slots_cache_ = 0;
  // Anything still staged was composed against the dead epoch's cursors;
  // drop it (a reliability layer replays from its own buffer, and a raw
  // user accepted posted-write semantics when it enabled coalescing).
  stage_.clear();
  stage_msgs_ = 0;
  stage_payload_bytes_ = 0;
  if (stage_timer_armed_) {
    (void)core_.engine().cancel(stage_timer_);
    stage_timer_armed_ = false;
  }
  // Belt and braces for the settle clock (its home reset is reset_rx): the
  // epoch handshake always pairs the two hooks, and a reset_tx-only caller
  // must not inherit a stale settle timestamp either.
  settle_since_ = Picoseconds::zero();
  settle_seq_ = 0;
}

sim::Task<Status> MsgEndpoint::put(const RemoteWindow& window, std::uint64_t offset,
                                   std::span<const std::uint8_t> payload,
                                   OrderingMode mode) {
  if (window.home_chip() != peer_) {
    co_return make_error(ErrorCode::kInvalidArgument,
                        "window does not belong to this endpoint's peer");
  }
  if (offset + payload.size() > window.range().size) {
    co_return make_error(ErrorCode::kOutOfRange, "put exceeds the mapped window");
  }
  Status s = co_await ordered_store(window.at(offset), payload, mode);
  if (!s.ok()) co_return s;
  if (mode == OrderingMode::kWeaklyOrdered) {
    s = co_await core_.sfence();  // commit
    if (!s.ok()) co_return s;
  }
  stats_.bytes_sent += payload.size();
  co_return Status{};
}

sim::Task<Status> MsgEndpoint::send_rendezvous(const RemoteWindow& window,
                                               std::uint64_t offset,
                                               std::span<const std::uint8_t> payload,
                                               OrderingMode mode) {
  // Data first (ordered ahead of the notice in the posted channel)...
  Status s = co_await put(window, offset, payload, mode);
  if (!s.ok()) co_return s;
  // ...then the control message. The notice carries the offset relative to
  // the receiver's shared region so the receiver can find the data without
  // knowing the sender's window arithmetic.
  const std::uint64_t shared_base =
      driver_.shared_region(peer_).base.value();
  const std::uint64_t abs = window.at(offset).value();
  TCC_ASSERT(abs >= shared_base, "rendezvous windows live in the shared region");
  RendezvousNotice notice;
  notice.offset = abs - shared_base;
  notice.len = static_cast<std::uint32_t>(payload.size());
  notice.crc = ht::crc32c(payload);
  std::uint8_t frame[16];
  std::memcpy(frame, &notice.offset, 8);
  std::memcpy(frame + 8, &notice.len, 4);
  std::memcpy(frame + 12, &notice.crc, 4);
  co_return co_await send(frame, mode);
}

sim::Task<Result<MsgEndpoint::RendezvousNotice>> MsgEndpoint::recv_rendezvous() {
  auto msg = co_await recv();
  if (!msg.ok()) co_return msg.error();
  if (msg.value().size() != 16) {
    co_return make_error(ErrorCode::kProtocolViolation, "malformed rendezvous notice");
  }
  RendezvousNotice notice;
  std::memcpy(&notice.offset, msg.value().data(), 8);
  std::memcpy(&notice.len, msg.value().data() + 8, 4);
  std::memcpy(&notice.crc, msg.value().data() + 12, 4);
  const AddrRange shared = driver_.shared_region(driver_.chip());
  if (notice.offset + notice.len > shared.size) {
    co_return make_error(ErrorCode::kProtocolViolation,
                        "rendezvous notice points outside the shared region");
  }
  co_return notice;
}

sim::Task<Result<std::vector<std::uint8_t>>> MsgEndpoint::recv_rendezvous_bytes() {
  auto notice = co_await recv_rendezvous();
  if (!notice.ok()) co_return notice.error();
  const AddrRange shared = driver_.shared_region(driver_.chip());
  std::vector<std::uint8_t> out(notice.value().len);
  Status s = co_await core_.load_bytes(shared.base + notice.value().offset, out);
  if (!s.ok()) co_return s.error();
  if (ht::crc32c(out) != notice.value().crc) {
    co_return make_error(ErrorCode::kProtocolViolation, "rendezvous payload CRC mismatch");
  }
  co_return out;
}

MsgLibrary::MsgLibrary(TcDriver& driver, opteron::Core& core)
    : driver_(driver), core_(core) {}

Result<MsgEndpoint*> MsgLibrary::connect(int peer_chip, RingChannel channel) {
  if (!driver_.loaded()) {
    return make_error(ErrorCode::kFailedPrecondition, "driver not loaded");
  }
  if (peer_chip == driver_.chip()) {
    return make_error(ErrorCode::kInvalidArgument, "cannot connect to self");
  }
  auto& per_channel = endpoints_[static_cast<int>(channel)];
  if (per_channel.size() < static_cast<std::size_t>(peer_chip + 1)) {
    per_channel.resize(static_cast<std::size_t>(peer_chip + 1));
  }
  auto& slot = per_channel[static_cast<std::size_t>(peer_chip)];
  if (!slot) {
    slot = std::make_unique<MsgEndpoint>(driver_, core_, peer_chip, channel);
  }
  return slot.get();
}

}  // namespace tcc::cluster

// tcrel: reliable, exactly-once, ordered delivery layered on the raw tcmsg
// ring, plus membership epochs for rejoin after faults.
//
// Raw tcmsg inherits HyperTransport's link-level integrity, but PR "fault
// domain" made links actually fail: posted writes into a dead link are
// dropped at the northbridge egress, so a message in flight during a
// blackout is silently lost and the receive cursor wedges forever. This
// layer adds the software end-to-end reliability the APEnet+ split
// prescribes (hardware link retry below, software sequencing above):
//
//  * every message carries a per-(peer, channel) sequence number, the
//    sender's current membership epoch and the frame kind packed into the
//    raw slot marker's high-half tag (MsgSlot) — the receive path already
//    loads that word, so the reliability header costs zero extra
//    uncacheable reads and zero payload bytes,
//  * the receiver publishes a cumulative delivered-count ACK into the ring
//    control block (kRelAckOffset) — piggybacked on the same posted path as
//    its own data, pushed standalone when the receive side idles or a
//    threshold of unacknowledged deliveries accumulates,
//  * the sender keeps every unacknowledged message in a bounded retransmit
//    buffer; a full buffer backpressures send() with a typed kBackpressure
//    (once its deadline passes) instead of ever overwriting unacked slots,
//  * loss is detected as ACK stall against the simulated clock and healed by
//    an epoch bump: both sides reset the raw rings, then the sender replays
//    the retransmit buffer (kReplay, default) or discards it and publishes a
//    gap marker (kFlush). Stale-epoch packets are discarded on receipt.
//
// The epoch handshake doubles as the rejoin protocol: when the TcDriver
// keepalive resurrects a dead peer (or the ACK stall detector fires during
// the blackout), the side that notices initiates a sync through the control
// block — see docs/ARCHITECTURE.md "Delivery guarantees" for the state
// machine. Everything runs on the simulated clock; no wall time.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "sim/mutex.hpp"
#include "tccluster/msg.hpp"

namespace tcc::cluster {

/// Register the tccluster.rel.* metrics with the global registry. Called by
/// TcDriver::load() so the names exist for the docs-catalogue test even in
/// runs that never touch the reliability layer. No-op without telemetry.
void register_reliable_metrics();

/// What happens to the retransmit buffer when an epoch sync completes.
enum class DeliveryPolicy {
  kReplay,  ///< replay every unacked message in order (exactly-once survives)
  kFlush,   ///< discard the buffer, publish a gap marker (bounded catch-up;
            ///< the flushed messages are lost BY POLICY and counted)
};

[[nodiscard]] const char* to_string(DeliveryPolicy p);

/// Tuning knobs of one ReliableLibrary (shared by its endpoints).
struct RelConfig {
  /// Wire width of the sequence number (test knob for wraparound coverage).
  /// At most 16: the wire seq lives in the low half of the marker tag. The
  /// window must stay below 2^(seq_bits-1) so modular deltas are
  /// unambiguous.
  int seq_bits = 16;
  /// Max unacknowledged messages buffered per endpoint before send()
  /// backpressures.
  std::uint64_t window = 32;
  /// No ACK progress for this long with messages outstanding -> resend the
  /// unacked window (go-back-N; the deadline-driven retransmit).
  Picoseconds stall_timeout = Picoseconds::from_us(25.0);
  /// Consecutive fruitless stall resends before escalating to an epoch sync
  /// (a resend cannot fill a hole a lost posted write left in the raw ring;
  /// only a ring reset can).
  int stall_sync_strikes = 3;
  /// Throttle for the opportunistic progress checks (ack refresh, epoch
  /// word poll) inside send/recv/poll loops.
  Picoseconds progress_interval = Picoseconds::from_ns(500.0);
  /// Background pump period (start_pump()); also the epoch republish beat.
  Picoseconds pump_interval = Picoseconds::from_us(2.0);
  /// Bound on any single raw-ring operation while a mutex is held, so an
  /// epoch reset can always interleave with a wedged raw op.
  Picoseconds raw_slice = Picoseconds::from_us(2.0);
  /// Settle delay before a sync initiator resets its receive ring, letting
  /// in-flight raw stores from the old epoch land (flight time is orders of
  /// magnitude below every initiation trigger; this is belt-and-braces).
  Picoseconds drain_delay = Picoseconds::from_ns(500.0);
  /// Deliveries without a piggyback opportunity before a standalone ACK
  /// push (mirrors raw tcmsg's kAckThreshold).
  std::uint64_t ack_threshold = 8;
  /// Batched-ACK hard cap: while a delivery burst is still draining (more
  /// sub-messages decoded and queued at the raw layer), the ack_threshold
  /// publish is deferred so the whole burst costs ONE control-block write —
  /// but never past this many unacknowledged deliveries. Keep it below the
  /// peer's window or a long burst could stall the sender mid-burst; the
  /// delayed-ACK timer (ack_delay) bounds the deferral in time regardless.
  std::uint64_t ack_batch_limit = 24;
  /// Packed line-group coalescing in the transmit drain path: a run of
  /// consecutive buffered messages each no larger than this is handed to
  /// the raw ring as ONE group (one doorbell, one credit acquisition, one
  /// sequence number at the slot level). Zero disables packing.
  std::uint32_t pack_eligible_bytes = 256;
  /// Cap on a packed group's region (record headers included). Bounds how
  /// many ring credits one drain round can claim at once.
  std::uint32_t pack_group_bytes = 1024;
  /// Delayed-ACK bound: every delivery arms a one-shot timer; if nothing
  /// else (piggyback, idle-edge push, threshold) has published the ACK by
  /// then, the timer does. Keeps the delivery fast path free of ACK stores
  /// while still covering a caller that stops calling recv() right after
  /// the stream's last message.
  Picoseconds ack_delay = Picoseconds::from_us(1.0);
  /// Cadence for loading the peer's ACK word with sends outstanding but no
  /// pressure (window under half full, no untransmitted backlog). Pressure
  /// makes the refresh eager again; this only bounds how stale the stall
  /// clock can run in a relaxed request/response exchange.
  Picoseconds ack_refresh_interval = Picoseconds::from_us(2.0);
  /// Throttle for polling the peer's epoch word while no sync is in flight
  /// — it only changes around faults, so the hot loops should not pay a
  /// 60 ns uncacheable load for it every progress beat.
  Picoseconds epoch_interval = Picoseconds::from_us(2.0);
  /// Consecutive out-of-order (future-seq) receptions before the receive
  /// side concludes it missed a sync and initiates one itself.
  int gap_sync_threshold = 64;
  DeliveryPolicy policy = DeliveryPolicy::kReplay;
  /// Cap on the per-endpoint diagnostics event log (trace export).
  std::size_t max_events = 4096;
};

/// Per-endpoint counters (process-wide aggregates live in tccluster.rel.*).
struct RelStats {
  std::uint64_t sent = 0;                ///< messages accepted by send()
  std::uint64_t delivered = 0;           ///< messages handed to recv() callers
  std::uint64_t acked = 0;               ///< sent messages confirmed by the peer ACK
  std::uint64_t retransmits = 0;         ///< stall resends + post-sync replays
  std::uint64_t duplicates_dropped = 0;  ///< re-deliveries suppressed by seqno
  std::uint64_t stale_epoch_drops = 0;   ///< packets from a superseded epoch
  std::uint64_t gap_drops = 0;           ///< future-seq packets dropped awaiting replay
  std::uint64_t backpressure_stalls = 0; ///< send() returns of kBackpressure
  std::uint64_t epoch_bumps = 0;         ///< syncs this endpoint participated in
  std::uint64_t flushed = 0;             ///< messages dropped by DeliveryPolicy::kFlush
  std::uint64_t acks_pushed = 0;         ///< standalone ACK word publishes
  std::uint64_t ack_deferrals = 0;       ///< threshold publishes deferred mid-burst
  std::uint64_t groups_sent = 0;         ///< packed line-groups handed to the ring
};

/// One entry of the bounded diagnostics log trace_export turns into
/// Perfetto instant events.
struct RelEvent {
  enum class Kind { kRetransmit, kEpochBump, kBackpressure };
  Kind kind = Kind::kRetransmit;
  Picoseconds at{};
  std::uint64_t a = 0;  ///< kRetransmit: seq; kEpochBump: new epoch; kBackpressure: window head seq
  std::uint64_t b = 0;  ///< kRetransmit: epoch; kEpochBump: 1 if this side initiated
};

class ReliableEndpoint {
 public:
  ReliableEndpoint(TcDriver& driver, opteron::Core& core, int peer_chip,
                   RingChannel channel, RelConfig cfg);

  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  /// Largest single reliable message. The rel header rides in the marker
  /// tag, not in payload bytes, so the raw limit passes through unchanged.
  static constexpr std::uint32_t kMaxPayloadBytes = kMaxMessageBytes;

  [[nodiscard]] int peer() const { return peer_; }
  [[nodiscard]] RingChannel channel() const { return channel_; }
  [[nodiscard]] const RelStats& stats() const { return stats_; }
  [[nodiscard]] const RelConfig& config() const { return cfg_; }

  /// Reliable ordered send. Blocks while the retransmit window is full;
  /// with a `deadline` (absolute simulated time) a still-full window past
  /// it returns typed kBackpressure and the message is NOT accepted.
  /// Once send() returns OK the message is accepted: it stays in the
  /// retransmit buffer and will be delivered exactly once (under kReplay)
  /// however many faults intervene.
  [[nodiscard]] sim::Task<Status> send(std::span<const std::uint8_t> payload,
                                       std::optional<Picoseconds> deadline = std::nullopt);

  /// Segment arbitrarily large data into reliable messages.
  [[nodiscard]] sim::Task<Status> send_bytes(
      std::span<const std::uint8_t> payload,
      std::optional<Picoseconds> deadline = std::nullopt);

  /// Reliable ordered receive: returns the next never-before-delivered
  /// message, transparently dropping duplicates, stale-epoch packets and
  /// out-of-order fragments, and running retransmit/epoch recovery while it
  /// waits. With a `deadline`, returns kTimeout once it passes.
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> recv(
      std::optional<Picoseconds> deadline = std::nullopt);

  /// True if something is waiting in the raw ring (it may still be a
  /// duplicate that recv() will silently drop). Also advances background
  /// recovery, so idle pollers keep retransmits and epoch syncs moving.
  [[nodiscard]] sim::Task<bool> poll();

  /// Wait until every accepted message has been acknowledged by the peer
  /// (the put-flush barrier primitive). kTimeout past the deadline.
  [[nodiscard]] sim::Task<Status> flush(
      std::optional<Picoseconds> deadline = std::nullopt);

  /// Spawn a background process that runs recovery every pump_interval —
  /// only needed when neither side is inside send()/recv()/poll() for long
  /// stretches. Stop it before expecting engine().run() to drain.
  void start_pump();
  void stop_pump() { pump_stop_ = true; }
  [[nodiscard]] bool pump_running() const { return pump_running_; }

  // ---- introspection (diag, trace export, tests) --------------------------
  [[nodiscard]] std::uint64_t epoch() const { return local_epoch_; }
  [[nodiscard]] bool syncing() const { return sync_pending_; }
  /// Messages accepted but not yet acknowledged (retransmit-queue depth).
  [[nodiscard]] std::uint64_t unacked() const { return buffer_.size(); }
  /// Highest own-send sequence the peer has acknowledged.
  [[nodiscard]] std::uint64_t last_acked_seq() const { return peer_delivered_; }
  /// Messages delivered to local recv() callers (what we ACK to the peer).
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] const std::vector<RelEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t events_dropped() const { return events_dropped_; }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;
    std::uint64_t retransmits = 0;
  };

  enum class MsgKind : std::uint8_t { kData = 0, kGapMark = 1 };

  [[nodiscard]] std::uint64_t seq_mask() const {
    return (std::uint64_t{1} << cfg_.seq_bits) - 1;
  }

  /// Pack seq/epoch/kind/seq_bits into the raw marker tag (layout in
  /// reliable.cpp).
  [[nodiscard]] std::uint32_t make_tag(std::uint64_t seq, MsgKind kind) const;

  /// Raw-send one message with the rel tag; caller holds the tx mutex.
  /// Returns false when the raw layer would not take it (ring full / link
  /// dead within the raw_slice) — the message stays buffered and
  /// drain_unsent() re-attempts it as credits return.
  [[nodiscard]] sim::Task<bool> transmit(std::uint64_t seq, MsgKind kind,
                                         std::span<const std::uint8_t> payload);

  /// Raw-send a run of consecutive buffered messages as ONE packed
  /// line-group (the copies are the caller's — the deque shifts across
  /// suspensions). Caller holds the tx mutex. False on raw refusal, and the
  /// whole group stays buffered (send_packed is all-or-nothing).
  [[nodiscard]] sim::Task<bool> transmit_group(const std::vector<Pending>& run);

  /// Arm the one-shot delayed-ACK timer (no-op if already armed).
  void arm_ack_timer();

  /// A duplicate or stale-epoch packet was suppressed: it is proof the peer
  /// is retransmitting, i.e. our cumulative ACK may have died on the wire.
  /// Counts toward the ACK-refresh opportunity check — the first suppressed
  /// packet since the last publish republishes immediately, later ones
  /// batch up to ack_threshold so a CRC-storm duplicate flood does not pay
  /// a control store + sfence per packet.
  [[nodiscard]] sim::Task<void> note_suppressed();

  /// Hand buffered-but-never-transmitted messages (seq >= next_unsent_seq_)
  /// to the raw ring in order, stopping at the first refusal. Caller holds
  /// the tx mutex. This is what keeps bulk streams moving when a message
  /// outruns ring credits: transmission order always equals seq order, so a
  /// later message is never raw-sent ahead of an earlier refusal.
  [[nodiscard]] sim::Task<void> drain_unsent();

  /// Opportunistic recovery step, throttled to cfg_.progress_interval:
  /// refresh the peer ACK word, poll the peer epoch word (adopt / complete
  /// syncs), detect ACK stalls and keepalive rejoin edges, republish while
  /// syncing.
  [[nodiscard]] sim::Task<void> progress();

  [[nodiscard]] sim::Task<void> refresh_acks();
  [[nodiscard]] sim::Task<void> initiate_sync();
  [[nodiscard]] sim::Task<void> adopt_epoch(std::uint64_t epoch);
  [[nodiscard]] sim::Task<void> complete_sync();
  [[nodiscard]] sim::Task<void> replay_unacked();
  [[nodiscard]] sim::Task<void> resend_window();
  [[nodiscard]] sim::Task<void> publish_ack();
  [[nodiscard]] sim::Task<void> publish_epoch();
  [[nodiscard]] sim::Task<void> pump_process();

  void record(RelEvent::Kind kind, std::uint64_t a, std::uint64_t b);

  TcDriver& driver_;
  opteron::Core& core_;
  int peer_;
  RingChannel channel_;
  RelConfig cfg_;
  MsgEndpoint raw_;

  // Control-block addresses (see driver.hpp layout comment).
  PhysAddr ack_in_;     ///< local:  peer's delivered count (acks our sends)
  PhysAddr epoch_in_;   ///< local:  peer's epoch word
  PhysAddr ack_out_;    ///< remote: our delivered count
  PhysAddr epoch_out_;  ///< remote: our epoch word

  // Transmit state.
  std::uint64_t next_send_seq_ = 1;
  /// Lowest seq not yet successfully handed to the raw ring this epoch
  /// (<= next_send_seq_; equality means no unsent backlog).
  std::uint64_t next_unsent_seq_ = 1;
  std::deque<Pending> buffer_;
  std::uint64_t peer_delivered_ = 0;   ///< cached ACK word
  Picoseconds last_tx_progress_{};
  int stall_strikes_ = 0;  ///< fruitless stall resends since the last ACK move
  sim::Mutex tx_mutex_;

  // Receive state.
  std::uint64_t delivered_ = 0;
  std::uint64_t acked_out_ = 0;        ///< last published ACK value
  std::uint64_t suppressed_since_ack_ = 0;  ///< dup/stale drops since a publish
  int gap_streak_ = 0;
  bool ack_timer_armed_ = false;
  sim::TimerHandle ack_timer_;  ///< pending delayed-ACK, cancellable
  sim::Mutex rx_mutex_;

  // Epoch state.
  std::uint64_t local_epoch_ = 0;
  std::uint64_t peer_epoch_seen_ = 0;
  bool sync_pending_ = false;  ///< initiator waiting for the peer echo
  bool sync_armed_ = false;    ///< initiator finished its rx reset + publish
  bool prev_peer_alive_ = true;

  Picoseconds last_progress_check_ = Picoseconds::zero();  // zero = never ran
  Picoseconds last_epoch_check_ = Picoseconds::zero();     // zero = never ran
  Picoseconds last_ack_refresh_ = Picoseconds::zero();     // zero = never ran
  bool pump_running_ = false;
  bool pump_stop_ = false;
  /// Liveness token for the detached delayed-ACK timer tasks: they hold a
  /// copy and bail out if the endpoint died before they fired.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  RelStats stats_;
  std::vector<RelEvent> events_;
  std::uint64_t events_dropped_ = 0;
};

/// Per-node factory mirroring MsgLibrary: opens reliable endpoints on
/// demand. Each ReliableEndpoint owns its raw MsgEndpoint — do not also use
/// MsgLibrary::connect() on the same (peer, channel) ring, the cursors
/// would fight.
class ReliableLibrary {
 public:
  ReliableLibrary(TcDriver& driver, opteron::Core& core, RelConfig cfg = {});

  ReliableLibrary(const ReliableLibrary&) = delete;
  ReliableLibrary& operator=(const ReliableLibrary&) = delete;

  [[nodiscard]] Result<ReliableEndpoint*> connect(
      int peer_chip, RingChannel channel = RingChannel::kApp);

  [[nodiscard]] TcDriver& driver() { return driver_; }
  [[nodiscard]] const RelConfig& config() const { return cfg_; }

  /// Every endpoint opened so far (diag / trace export iterate these).
  [[nodiscard]] std::vector<ReliableEndpoint*> open_endpoints();

  /// Stop every running background pump (engine drain hygiene).
  void stop_pumps();

 private:
  TcDriver& driver_;
  opteron::Core& core_;
  RelConfig cfg_;
  /// endpoints_[channel][peer]
  std::vector<std::unique_ptr<ReliableEndpoint>> endpoints_[kNumChannels];
};

}  // namespace tcc::cluster

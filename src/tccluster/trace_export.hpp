// Chrome trace-event export of a TcCluster run: every packet recorded by the
// attached LinkTracers becomes an "X" (complete) slice on that link's track,
// and the firmware boot stages become "B"/"E" spans on a dedicated boot
// track. Load the result in https://ui.perfetto.dev or chrome://tracing.
//
// Requires TcCluster::enable_tracing() to have been called (before boot, if
// boot traffic should appear). Tracer saturation is surfaced as an instant
// event per affected link plus a "dropped" arg — a truncated trace must not
// read as a quiet wire.
#pragma once

#include <string>

#include "common/error.hpp"
#include "tccluster/cluster.hpp"

namespace tcc::cluster {

/// The trace document: a Chrome trace-event JSON array.
[[nodiscard]] std::string chrome_trace_json(TcCluster& cluster);

/// chrome_trace_json() straight to a file. Fails if tracing was never
/// enabled (the trace would be empty) or the file cannot be written.
Status write_chrome_trace(TcCluster& cluster, const std::string& path);

}  // namespace tcc::cluster

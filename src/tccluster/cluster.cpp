#include "tccluster/cluster.hpp"

namespace tcc::cluster {

Result<std::unique_ptr<TcCluster>> TcCluster::create(Options options) {
  auto plan = topology::ClusterPlan::build(options.topology);
  if (!plan.ok()) return plan.error();
  // Not make_unique: the constructor is private.
  return std::unique_ptr<TcCluster>(
      new TcCluster(std::move(options), std::move(plan.value())));
}

TcCluster::TcCluster(Options options, topology::ClusterPlan plan)
    : options_(std::move(options)), engine_(options_.scheduler) {
  opteron::ChipConfig chip_template;
  chip_template.nb_outbound_depth = options_.nb_outbound_depth;
  machine_ = std::make_unique<firmware::Machine>(engine_, std::move(plan), chip_template);
  boot_ = std::make_unique<firmware::BootSequencer>(*machine_, options_.boot);
}

void TcCluster::enable_tracing(std::size_t max_records) {
  if (!tracers_.empty()) return;
  tracers_.reserve(static_cast<std::size_t>(machine_->num_links()));
  for (int i = 0; i < machine_->num_links(); ++i) {
    auto tracer = std::make_unique<ht::LinkTracer>();
    tracer->set_max_records(max_records);
    machine_->link(i).set_tracer(tracer.get());
    tracers_.push_back(std::move(tracer));
  }
}

Status TcCluster::boot() {
  if (booted_) {
    return make_error(ErrorCode::kFailedPrecondition, "cluster already booted");
  }
  if (Status s = boot_->run(); !s.ok()) return s;

  drivers_.clear();
  libraries_.clear();
  rel_libraries_.clear();
  for (int c = 0; c < machine_->num_chips(); ++c) {
    auto driver = std::make_unique<TcDriver>(*machine_, c);
    driver->set_shared_bytes(options_.shared_bytes);
    if (Status s = driver->load(); !s.ok()) return s;
    libraries_.push_back(
        std::make_unique<MsgLibrary>(*driver, machine_->chip(c).core(0)));
    rel_libraries_.push_back(std::make_unique<ReliableLibrary>(
        *driver, machine_->chip(c).core(0), options_.rel));
    drivers_.push_back(std::move(driver));
  }
  booted_ = true;
  for (const FaultEvent& ev : options_.faults) {
    if (Status s = inject(ev); !s.ok()) return s;
  }
  return {};
}

Status TcCluster::inject(const FaultEvent& fault) {
  if (!booted_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "fault injection needs a booted cluster");
  }
  if (!injector_) injector_ = std::make_unique<FaultInjector>(*this);
  return injector_->schedule(fault);
}

Status TcCluster::reroute_around_failed_links(topology::RouteAroundPolicy policy) {
  std::vector<std::size_t> failed;
  for (int i = 0; i < machine_->num_links(); ++i) {
    if (!machine_->link(i).up()) failed.push_back(static_cast<std::size_t>(i));
  }
  if (failed.empty()) return {};
  auto degraded = plan().route_around(failed, policy);
  if (!degraded.ok()) return degraded.error();
  return machine_->apply_routing(degraded.value());
}

void TcCluster::start_keepalives(Picoseconds interval, Picoseconds timeout) {
  for (auto& d : drivers_) d->start_keepalive(interval, timeout);
}

void TcCluster::stop_keepalives() {
  for (auto& d : drivers_) d->stop_keepalive();
}

int TcCluster::add_diag_section(std::function<std::string()> section) {
  const int id = next_diag_section_id_++;
  diag_sections_[id] = std::move(section);
  return id;
}

void TcCluster::remove_diag_section(int id) { diag_sections_.erase(id); }

std::string TcCluster::diag_sections() const {
  std::string out;
  for (const auto& [id, fn] : diag_sections_) out += fn();
  return out;
}

}  // namespace tcc::cluster

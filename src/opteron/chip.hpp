// One Opteron package: cores + write-combining units + northbridge + memory
// controller + four HyperTransport link endpoints (Figure 1 of the paper).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "ht/link.hpp"
#include "opteron/core.hpp"
#include "opteron/memory_controller.hpp"
#include "opteron/northbridge.hpp"
#include "sim/engine.hpp"

namespace tcc::opteron {

struct ChipConfig {
  std::string name = "node";
  int num_cores = 4;                 ///< Shanghai: four cores
  std::uint64_t dram_bytes = 8_GiB;  ///< per-node memory in the prototype
  int nb_outbound_depth = kNbOutboundDepth;
};

class OpteronChip {
 public:
  OpteronChip(sim::Engine& engine, ChipConfig config);

  OpteronChip(const OpteronChip&) = delete;
  OpteronChip& operator=(const OpteronChip&) = delete;

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const ChipConfig& config() const { return config_; }

  [[nodiscard]] Northbridge& nb() { return nb_; }
  [[nodiscard]] const Northbridge& nb() const { return nb_; }
  [[nodiscard]] MemoryController& mc() { return mc_; }
  [[nodiscard]] Core& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int num_cores() const { return static_cast<int>(cores_.size()); }

  /// Link endpoint for port `i` (0..3). Unwired ports are valid endpoints
  /// that simply never train.
  [[nodiscard]] ht::HtEndpoint& endpoint(int i) {
    return *endpoints_.at(static_cast<std::size_t>(i));
  }

  /// Firmware "Memory Init" stage: place this node's DIMMs in the physical
  /// address map (§V).
  void set_dram_window(AddrRange range);

  /// Firmware "CPU MSR Init" stage: mirror an MTRR entry onto all cores.
  Status set_mtrr_all_cores(AddrRange range, MemType type);

  /// Reset-time state: NodeID returns to the unassigned sentinel and address
  /// maps clear; latched link requests (freq/width/force-noncoherent)
  /// survive, which is what makes the warm-reset trick work (§IV.B).
  void warm_reset();

 private:
  sim::Engine& engine_;
  ChipConfig config_;
  MemoryController mc_;
  Northbridge nb_;
  std::array<std::unique_ptr<ht::HtEndpoint>, kMaxLinks> endpoints_;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace tcc::opteron

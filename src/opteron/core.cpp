#include "opteron/core.hpp"

#include <cstring>

namespace tcc::opteron {

Core::Core(sim::Engine& engine, std::string name, Northbridge& nb)
    : engine_(engine), name_(std::move(name)), nb_(nb), wc_(engine, nb) {}

sim::Task<Status> Core::store(PhysAddr addr, std::span<const std::uint8_t> bytes) {
  TCC_ASSERT(bytes.size() <= 8, "a single store is at most 8 bytes");
  ++stores_;
  co_await engine_.delay(kStoreIssue);
  switch (mtrr_.type_of(addr)) {
    case MemType::kWriteBack: {
      // Cacheable store: must target local DRAM (coherent remote WB accesses
      // go through the coherence layer, not the raw core API).
      if (!nb_.mc().range().contains(addr)) {
        co_return make_error(ErrorCode::kUnsupported,
                             name_ + ": WB store outside local DRAM (use the "
                                     "coherence layer for remote shared memory)");
      }
      nb_.mc().poke(addr, bytes);
      co_return Status{};
    }
    case MemType::kWriteCombining:
      co_return co_await wc_.store(addr, bytes);
    case MemType::kUncacheable: {
      ht::Packet p = ht::Packet::posted_write(addr, bytes);
      co_return co_await nb_.core_posted_write(std::move(p));
    }
  }
  co_return make_error(ErrorCode::kInvalidArgument, "unknown memory type");
}

sim::Task<Status> Core::store_bytes(PhysAddr addr, std::span<const std::uint8_t> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    // Chunk to 8-byte alignment so WC lines fill front-to-back.
    const std::uint64_t a = addr.value() + done;
    std::size_t chunk = 8 - (a % 8);
    chunk = std::min(chunk, bytes.size() - done);
    Status s = co_await store(PhysAddr{a}, bytes.subspan(done, chunk));
    if (!s.ok()) co_return s;
    done += chunk;
  }
  co_return Status{};
}

sim::Task<Status> Core::store_u64(PhysAddr addr, std::uint64_t value) {
  std::uint8_t buf[8];
  std::memcpy(buf, &value, 8);
  co_return co_await store(addr, buf);
}

sim::Task<Result<std::vector<std::uint8_t>>> Core::load(PhysAddr addr,
                                                        std::uint32_t size) {
  TCC_ASSERT(size <= 8, "a single load is at most 8 bytes");
  ++loads_;
  co_await engine_.delay(kLoadIssue);
  switch (mtrr_.type_of(addr)) {
    case MemType::kWriteBack: {
      if (!nb_.mc().range().contains(addr)) {
        co_return make_error(ErrorCode::kUnsupported,
                             name_ + ": WB load outside local DRAM");
      }
      co_await engine_.delay(kCacheHitLatency);
      std::vector<std::uint8_t> out(size);
      nb_.mc().peek(addr, out);
      co_return out;
    }
    case MemType::kWriteCombining:
    case MemType::kUncacheable:
      // Both are uncached on the load side; the northbridge enforces the
      // write-only rule for TCCluster apertures.
      co_return co_await nb_.core_read(addr, size);
  }
  co_return make_error(ErrorCode::kInvalidArgument, "unknown memory type");
}

sim::Task<Result<std::uint64_t>> Core::load_u64(PhysAddr addr) {
  auto r = co_await load(addr, 8);
  if (!r.ok()) co_return r.error();
  std::uint64_t v = 0;
  std::memcpy(&v, r.value().data(), 8);
  co_return v;
}

sim::Task<Status> Core::load_bytes(PhysAddr addr, std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t a = addr.value() + done;
    std::size_t chunk = 8 - (a % 8);
    chunk = std::min(chunk, out.size() - done);
    auto r = co_await load(PhysAddr{a}, static_cast<std::uint32_t>(chunk));
    if (!r.ok()) co_return r.error();
    std::memcpy(out.data() + done, r.value().data(), chunk);
    done += chunk;
  }
  co_return Status{};
}

sim::Task<Status> Core::sfence() {
  // Sfence drains the WC buffers into the (in-order) northbridge queue and
  // serializes the pipeline. It does NOT wait for posted writes to reach
  // their destination — posted traffic has no completion; ordering is
  // guaranteed by the single in-order posted channel (§IV.A).
  ++sfences_;
  Status s = co_await wc_.flush_all();
  if (!s.ok()) co_return s;
  co_await engine_.delay(kSfencePipeline);
  co_return Status{};
}

}  // namespace tcc::opteron

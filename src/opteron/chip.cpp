#include "opteron/chip.hpp"

namespace tcc::opteron {

OpteronChip::OpteronChip(sim::Engine& engine, ChipConfig config)
    : engine_(engine),
      config_(std::move(config)),
      mc_(engine, AddrRange{PhysAddr{0}, 0}),
      nb_(engine, config_.name + ".nb", mc_, config_.nb_outbound_depth) {
  for (int i = 0; i < kMaxLinks; ++i) {
    endpoints_[static_cast<std::size_t>(i)] = std::make_unique<ht::HtEndpoint>(
        engine_, config_.name + ".L" + std::to_string(i), ht::EndpointDevice::kProcessor);
    nb_.attach_link(i, *endpoints_[static_cast<std::size_t>(i)]);
  }
  for (int c = 0; c < config_.num_cores; ++c) {
    cores_.push_back(std::make_unique<Core>(
        engine_, config_.name + ".core" + std::to_string(c), nb_));
  }
}

void OpteronChip::set_dram_window(AddrRange range) { mc_.set_range(range); }

Status OpteronChip::set_mtrr_all_cores(AddrRange range, MemType type) {
  for (auto& core : cores_) {
    Status s = core->mtrr().set(range, type);
    if (!s.ok()) return s;
  }
  return {};
}

void OpteronChip::warm_reset() {
  nb_.regs().node_id = kUnassignedNodeId;
  nb_.regs().clear_ranges();
  nb_.regs().tccluster_mode = false;
  nb_.regs().tccluster_links = 0;
  nb_.regs().broadcast_forward_mask = 0;
  for (auto& ep : endpoints_) {
    ep->regs().init_complete = false;
    ep->regs().connected = false;
    // requested_width / requested_freq / force_noncoherent are latched and
    // survive: they are evaluated by the next link training.
  }
  for (auto& core : cores_) {
    core->mtrr() = MtrrFile{MemType::kUncacheable};
  }
}

}  // namespace tcc::opteron

#include "opteron/mtrr.hpp"

#include <algorithm>

namespace tcc::opteron {

const char* to_string(MemType t) {
  switch (t) {
    case MemType::kUncacheable: return "UC";
    case MemType::kWriteCombining: return "WC";
    case MemType::kWriteBack: return "WB";
  }
  return "?";
}

Status MtrrFile::set(AddrRange range, MemType type) {
  if (range.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty MTRR range");
  }
  if (!range.base.is_aligned(4096) || range.size % 4096 != 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "MTRR ranges must be 4 KiB aligned");
  }
  entries_.push_back(MtrrEntry{range, type});
  return {};
}

void MtrrFile::clear(AddrRange range) {
  std::erase_if(entries_, [&](const MtrrEntry& e) { return e.range.overlaps(range); });
}

MemType MtrrFile::type_of(PhysAddr addr) const {
  // Later entries take precedence: scan from the back.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->range.contains(addr)) return it->type;
  }
  return default_type_;
}

bool MtrrFile::uniform(PhysAddr addr, std::uint64_t len) const {
  if (len == 0) return true;
  const MemType first = type_of(addr);
  // 4 KiB granularity: checking page boundaries inside the span suffices.
  for (std::uint64_t off = 0; off < len; off += 4096) {
    if (type_of(addr + off) != first) return false;
  }
  return type_of(addr + (len - 1)) == first;
}

}  // namespace tcc::opteron

// Write-combining buffers.
//
// K10 cores have eight 64-byte WC buffers. Stores to WC-typed memory collect
// in them; a buffer dispatches to the northbridge when it fills, when it is
// evicted to make room, or when an Sfence drains the unit. This is how the
// paper turns individual 64-bit stores into max-sized HyperTransport packets
// (§VI: "intensive use of the write combining capability").
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "ht/packet.hpp"
#include "opteron/northbridge.hpp"
#include "opteron/timing.hpp"
#include "sim/engine.hpp"

namespace tcc::opteron {

class WriteCombiningUnit {
 public:
  WriteCombiningUnit(sim::Engine& engine, Northbridge& nb)
      : engine_(engine), nb_(nb) {}

  WriteCombiningUnit(const WriteCombiningUnit&) = delete;
  WriteCombiningUnit& operator=(const WriteCombiningUnit&) = delete;

  /// Ablation control: with combining disabled every store dispatches as its
  /// own HT packet (bench/ablation_writecombine).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Accept one store of at most 8 bytes that does not cross a 64 B line.
  /// May suspend: filling the last byte of a line (or running out of
  /// buffers) dispatches a packet, which backpressures when queues are full.
  [[nodiscard]] sim::Task<Status> store(PhysAddr addr, std::span<const std::uint8_t> bytes);

  /// Dispatch every open buffer in allocation order (the Sfence drain).
  [[nodiscard]] sim::Task<Status> flush_all();

  [[nodiscard]] std::uint64_t packets_emitted() const { return packets_emitted_; }
  [[nodiscard]] std::uint64_t full_line_packets() const { return full_line_packets_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] int open_buffers() const;

 private:
  struct Buffer {
    bool valid = false;
    PhysAddr line;                      // 64 B aligned base
    std::array<std::uint8_t, kWcLineBytes> data{};
    std::bitset<kWcLineBytes> mask;
    std::uint64_t alloc_seq = 0;
  };

  [[nodiscard]] sim::Task<Status> dispatch(Buffer& buf);

  sim::Engine& engine_;
  Northbridge& nb_;
  bool enabled_ = true;
  std::array<Buffer, kWcBuffers> buffers_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t full_line_packets_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tcc::opteron

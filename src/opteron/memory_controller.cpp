#include "opteron/memory_controller.hpp"

#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace tcc::opteron {

void MemoryController::post_write(PhysAddr addr, std::span<const std::uint8_t> data) {
  TCC_ASSERT(range_.contains(addr), "MC write outside its DRAM range");
  ++writes_;
  bytes_written_ += data.size();
  // Visibility after the array write completes.
  std::vector<std::uint8_t> copy(data.begin(), data.end());
  engine_.schedule(kMemWriteLatency, [this, addr, copy = std::move(copy)] {
    write_raw(addr, copy);
  });
}

sim::Task<void> MemoryController::timed_read(PhysAddr addr, std::span<std::uint8_t> out) {
  TCC_ASSERT(range_.contains(addr), "MC read outside its DRAM range");
  ++reads_;
  co_await engine_.delay(kMemReadLatency);
  read_raw(addr, out);
}

void MemoryController::write_raw(PhysAddr addr, std::span<const std::uint8_t> data) {
  std::uint64_t off = addr - range_.base;
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t page_index = (off + done) / kPageSize;
    const std::uint64_t in_page = (off + done) % kPageSize;
    const std::size_t chunk =
        std::min<std::size_t>(data.size() - done, kPageSize - in_page);
    std::memcpy(page_for(page_index).data() + in_page, data.data() + done, chunk);
    done += chunk;
  }
}

void MemoryController::read_raw(PhysAddr addr, std::span<std::uint8_t> out) const {
  std::uint64_t off = addr - range_.base;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t page_index = (off + done) / kPageSize;
    const std::uint64_t in_page = (off + done) % kPageSize;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, kPageSize - in_page);
    auto it = pages_.find(page_index);
    if (it == pages_.end()) {
      std::memset(out.data() + done, 0, chunk);  // untouched DRAM reads as zero
    } else {
      std::memcpy(out.data() + done, it->second->data() + in_page, chunk);
    }
    done += chunk;
  }
}

MemoryController::Page& MemoryController::page_for(std::uint64_t page_index) {
  auto& slot = pages_[page_index];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

}  // namespace tcc::opteron

// DDR2 memory controller with sparse backing storage.
//
// Holds the actual bytes of one node's DRAM so messages carry real data
// end-to-end through the simulated fabric. Timing: closed-page DDR2-800
// constants from opteron/timing.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/units.hpp"
#include "opteron/timing.hpp"
#include "sim/engine.hpp"

namespace tcc::opteron {

class MemoryController {
 public:
  MemoryController(sim::Engine& engine, AddrRange dram_range)
      : engine_(engine), range_(dram_range) {}

  MemoryController(const MemoryController&) = delete;
  MemoryController& operator=(const MemoryController&) = delete;

  [[nodiscard]] const AddrRange& range() const { return range_; }

  /// Firmware Memory-Init stage: place this node's DIMMs into the physical
  /// address map. Discards any previous contents.
  void set_range(AddrRange range) {
    range_ = range;
    pages_.clear();
  }

  /// Accept a posted write: data becomes visible to reads after the DRAM
  /// write latency. (Models the MC write buffer + array write.)
  void post_write(PhysAddr addr, std::span<const std::uint8_t> data);

  /// Timed read: suspends for the DRAM read latency, then samples memory —
  /// so a write that lands during the access is observed, like a real
  /// just-in-time poll.
  [[nodiscard]] sim::Task<void> timed_read(PhysAddr addr, std::span<std::uint8_t> out);

  /// Zero-time peeks/pokes for test setup and checking (not timed).
  void poke(PhysAddr addr, std::span<const std::uint8_t> data) { write_raw(addr, data); }
  void peek(PhysAddr addr, std::span<std::uint8_t> out) const { read_raw(addr, out); }

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  static constexpr std::uint64_t kPageSize = 4096;
  using Page = std::array<std::uint8_t, kPageSize>;

  void write_raw(PhysAddr addr, std::span<const std::uint8_t> data);
  void read_raw(PhysAddr addr, std::span<std::uint8_t> out) const;
  Page& page_for(std::uint64_t page_index);

  sim::Engine& engine_;
  AddrRange range_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace tcc::opteron

// Opteron northbridge model: address-map routing, IO bridge, response
// matching, and the TCCluster-mode behaviours (§IV.C/§IV.D).
//
// Routing, exactly as the paper describes it: a request address is first
// compared against the DRAM base/limit registers (hit -> home NodeID; if the
// home is this node the request sinks into the local memory controller,
// otherwise the routing table gives the egress link) and then against the
// MMIO base/limit registers, which name the egress link *directly* — the
// property TCCluster exploits by giving every node NodeID 0 and describing
// all remote memory as MMIO.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "ht/link.hpp"
#include "ht/packet.hpp"
#include "opteron/memory_controller.hpp"
#include "opteron/registers.hpp"
#include "opteron/timing.hpp"
#include "sim/bounded.hpp"
#include "sim/engine.hpp"

namespace tcc::opteron {

/// Where a request entered the northbridge.
struct Ingress {
  enum class Kind { kCore, kLink } kind = Kind::kCore;
  int link = -1;  ///< valid when kind == kLink
};

class Northbridge {
 public:
  /// `outbound_depth` is the per-link outbound request queue depth; Fig. 6's
  /// issue-timed artifact series raises it to emulate a deep buffering chain.
  Northbridge(sim::Engine& engine, std::string name, MemoryController& mc,
              int outbound_depth = kNbOutboundDepth);

  Northbridge(const Northbridge&) = delete;
  Northbridge& operator=(const Northbridge&) = delete;

  [[nodiscard]] NorthbridgeRegs& regs() { return regs_; }
  [[nodiscard]] const NorthbridgeRegs& regs() const { return regs_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Attach a link endpoint to port `index`. The northbridge becomes the
  /// endpoint's sink and owns ingress processing for it.
  void attach_link(int index, ht::HtEndpoint& endpoint);
  [[nodiscard]] ht::HtEndpoint* link(int index) const { return links_.at(static_cast<std::size_t>(index)); }

  // -------- core-side interface (used by Core / WC unit) ----------------

  /// Posted write from a core. Suspends while the relevant outbound queue is
  /// full (this is the backpressure Sfence and the WC unit feel). Returns a
  /// config error if the address matches no enabled range.
  [[nodiscard]] sim::Task<Status> core_posted_write(ht::Packet packet);

  /// Uncacheable read from a core: local DRAM reads go to the memory
  /// controller; reads into MMIO space become tagged non-posted requests.
  /// Reads into TCCluster MMIO are rejected (write-only network, §IV.A).
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> core_read(
      PhysAddr addr, std::uint32_t size);

  /// Suspend until every outbound queue this core filled has drained into
  /// the link TX FIFOs. Part of the Sfence contract.
  [[nodiscard]] sim::Task<void> drain_outbound();

  /// Emit a broadcast (interrupt). Used by the interrupt-storm test.
  [[nodiscard]] sim::Task<Status> core_broadcast();

  // -------- statistics ---------------------------------------------------

  [[nodiscard]] std::uint64_t requests_forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t requests_sunk() const { return sunk_; }
  [[nodiscard]] std::uint64_t adaptive_escapes() const { return adaptive_escapes_; }
  [[nodiscard]] std::uint64_t broadcasts_received() const { return irqs_; }
  [[nodiscard]] MemoryController& mc() { return mc_; }

 private:
  /// Routing decision for a request address.
  struct Route {
    enum class Kind { kLocalMemory, kLink, kMasterAbort } kind = Kind::kMasterAbort;
    int link = -1;
    bool non_posted_allowed = true;
  };
  [[nodiscard]] Route route_request(PhysAddr addr) const;

  /// Per-link ingress process: pulls packets delivered by the endpoint sink.
  sim::Task<void> ingress_process(int link_index);
  sim::Task<void> handle_ingress(int link_index, ht::Packet packet);

  /// Per-link egress pump: applies the per-request scheduling gap and pushes
  /// into the endpoint's (bounded) TX FIFO.
  sim::Task<void> egress_process(int link_index);

  /// Send a packet towards `route` (from core or forwarded from a link).
  sim::Task<Status> dispatch(Route route, ht::Packet packet, Ingress from);

  /// Tag allocation for core-issued non-posted requests.
  struct PendingRead {
    bool in_use = false;
    bool done = false;
    std::vector<std::uint8_t> data;
    std::unique_ptr<sim::Trigger> ready;
  };
  sim::Task<int> alloc_tag();
  void free_tag(int tag);

  sim::Engine& engine_;
  std::string name_;
  MemoryController& mc_;
  NorthbridgeRegs regs_;

  std::array<ht::HtEndpoint*, kMaxLinks> links_{};
  std::vector<std::unique_ptr<sim::BoundedChannel<ht::Packet>>> ingress_;
  std::vector<std::unique_ptr<sim::BoundedChannel<ht::Packet>>> outbound_;
  int outbound_depth_;

  std::array<std::unique_ptr<PendingRead>, kResponseTags> pending_;
  int free_tags_ = kResponseTags;
  std::unique_ptr<sim::Trigger> tag_freed_;

  std::uint64_t forwarded_ = 0;
  std::uint64_t sunk_ = 0;
  std::uint64_t adaptive_escapes_ = 0;
  std::uint64_t irqs_ = 0;
};

}  // namespace tcc::opteron

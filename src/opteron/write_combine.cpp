#include "opteron/write_combine.hpp"

#include <algorithm>
#include <cstring>

#include "telemetry/metrics.hpp"

namespace tcc::opteron {

#if TCC_TELEMETRY_ENABLED
namespace {

/// Flush-cause accounting across every WC unit in the process: which of the
/// three dispatch triggers (full line, capacity eviction, fence drain) fired
/// (see docs/OBSERVABILITY.md for the catalogue).
struct WcMetrics {
  telemetry::Counter& flush_full_line = telemetry::MetricsRegistry::global().counter(
      "opteron.wc.flush_full_line");
  telemetry::Counter& flush_eviction = telemetry::MetricsRegistry::global().counter(
      "opteron.wc.flush_eviction");
  telemetry::Counter& flush_fence =
      telemetry::MetricsRegistry::global().counter("opteron.wc.flush_fence");
  telemetry::Counter& packets_emitted = telemetry::MetricsRegistry::global().counter(
      "opteron.wc.packets_emitted");
  telemetry::Counter& bypass_stores = telemetry::MetricsRegistry::global().counter(
      "opteron.wc.bypass_stores");
};

WcMetrics& wc_metrics() {
  static WcMetrics m;
  return m;
}

}  // namespace
#endif  // TCC_TELEMETRY_ENABLED

int WriteCombiningUnit::open_buffers() const {
  return static_cast<int>(
      std::count_if(buffers_.begin(), buffers_.end(), [](const Buffer& b) { return b.valid; }));
}

sim::Task<Status> WriteCombiningUnit::store(PhysAddr addr,
                                            std::span<const std::uint8_t> bytes) {
  TCC_ASSERT(bytes.size() <= 8, "WC stores are at most 8 bytes");
  const PhysAddr line = addr.align_down(kWcLineBytes);
  TCC_ASSERT((addr - line) + bytes.size() <= kWcLineBytes,
             "WC store must not cross a cache line");

  if (!enabled_) {
    // Ablation mode: no combining, one packet per store.
    ht::Packet p = ht::Packet::posted_write(addr, bytes);
    ++packets_emitted_;
    TCC_METRIC(wc_metrics().bypass_stores.inc());
    TCC_METRIC(wc_metrics().packets_emitted.inc());
    co_await engine_.delay(kWcDispatch);
    co_return co_await nb_.core_posted_write(std::move(p));
  }

  // Find an open buffer for this line.
  Buffer* buf = nullptr;
  for (auto& b : buffers_) {
    if (b.valid && b.line == line) {
      buf = &b;
      break;
    }
  }
  if (buf == nullptr) {
    // Allocate: free buffer if available, else evict the oldest (partial
    // dispatch — the weakly-ordered "flushed automatically on overflow"
    // behaviour of §VI).
    for (auto& b : buffers_) {
      if (!b.valid) {
        buf = &b;
        break;
      }
    }
    if (buf == nullptr) {
      buf = &*std::min_element(buffers_.begin(), buffers_.end(),
                               [](const Buffer& a, const Buffer& b) {
                                 return a.alloc_seq < b.alloc_seq;
                               });
      ++evictions_;
      TCC_METRIC(wc_metrics().flush_eviction.inc());
      Status s = co_await dispatch(*buf);
      if (!s.ok()) co_return s;
    }
    buf->valid = true;
    buf->line = line;
    buf->mask.reset();
    buf->alloc_seq = next_seq_++;
  }

  const std::uint64_t off = addr - buf->line;
  std::memcpy(buf->data.data() + off, bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    buf->mask.set(off + i);
  }

  if (buf->mask.all()) {
    ++full_line_packets_;
    TCC_METRIC(wc_metrics().flush_full_line.inc());
    co_return co_await dispatch(*buf);
  }
  co_return Status{};
}

sim::Task<Status> WriteCombiningUnit::flush_all() {
  // Dispatch in allocation order so program order is preserved per line.
  for (;;) {
    Buffer* oldest = nullptr;
    for (auto& b : buffers_) {
      if (b.valid && (oldest == nullptr || b.alloc_seq < oldest->alloc_seq)) {
        oldest = &b;
      }
    }
    if (oldest == nullptr) co_return Status{};
    TCC_METRIC(wc_metrics().flush_fence.inc());
    Status s = co_await dispatch(*oldest);
    if (!s.ok()) co_return s;
  }
}

sim::Task<Status> WriteCombiningUnit::dispatch(Buffer& buf) {
  TCC_ASSERT(buf.valid, "dispatch of an invalid WC buffer");
  buf.valid = false;

  // Emit each contiguous run of valid bytes as one sized posted write.
  std::size_t i = 0;
  while (i < kWcLineBytes) {
    if (!buf.mask.test(i)) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < kWcLineBytes && buf.mask.test(j)) ++j;
    ht::Packet p = ht::Packet::posted_write(
        buf.line + i, std::span<const std::uint8_t>(buf.data.data() + i, j - i));
    ++packets_emitted_;
    TCC_METRIC(wc_metrics().packets_emitted.inc());
    co_await engine_.delay(kWcDispatch);
    Status s = co_await nb_.core_posted_write(std::move(p));
    if (!s.ok()) co_return s;
    i = j;
  }
  co_return Status{};
}

}  // namespace tcc::opteron

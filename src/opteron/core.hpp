// A simulated Opteron core: the execution context simulated software (the
// firmware, the message library, benchmark kernels) runs on.
//
// The core dispatches memory operations according to the MTRR type of the
// target — write-back (cacheable local memory), write-combining (the
// TCCluster remote aperture), or uncacheable (receive rings, device MMIO) —
// which is exactly the distinction the paper's driver sets up (§V/§VI).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "opteron/mtrr.hpp"
#include "opteron/northbridge.hpp"
#include "opteron/timing.hpp"
#include "opteron/write_combine.hpp"
#include "sim/engine.hpp"

namespace tcc::opteron {

class Core {
 public:
  Core(sim::Engine& engine, std::string name, Northbridge& nb);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MtrrFile& mtrr() { return mtrr_; }
  [[nodiscard]] const MtrrFile& mtrr() const { return mtrr_; }
  [[nodiscard]] WriteCombiningUnit& wc() { return wc_; }
  [[nodiscard]] Northbridge& northbridge() { return nb_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Current simulated time (for benchmark kernels).
  [[nodiscard]] Picoseconds now() const { return engine_.now(); }

  /// Burn compute time.
  [[nodiscard]] sim::DelayAwaiter compute(Picoseconds d) { return engine_.delay(d); }

  // ---- memory operations -------------------------------------------------

  /// Store up to 8 bytes (one machine store). Dispatch path depends on the
  /// MTRR type of `addr`.
  [[nodiscard]] sim::Task<Status> store(PhysAddr addr, std::span<const std::uint8_t> bytes);

  /// Store an arbitrary buffer as a sequence of aligned 8-byte stores —
  /// what memcpy-to-aperture compiles to in the paper's message library.
  [[nodiscard]] sim::Task<Status> store_bytes(PhysAddr addr,
                                              std::span<const std::uint8_t> bytes);

  [[nodiscard]] sim::Task<Status> store_u64(PhysAddr addr, std::uint64_t value);

  /// Load up to 8 bytes. Loads from WC/TCCluster apertures are rejected —
  /// the network is write-only (§IV.A).
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> load(PhysAddr addr,
                                                                  std::uint32_t size);

  [[nodiscard]] sim::Task<Result<std::uint64_t>> load_u64(PhysAddr addr);

  /// Load an arbitrary buffer (sequence of 8-byte loads).
  [[nodiscard]] sim::Task<Status> load_bytes(PhysAddr addr, std::span<std::uint8_t> out);

  /// Sfence: drain the WC buffers, wait for the northbridge outbound queues
  /// to accept everything, and pay the pipeline serialization cost. After
  /// completion all prior stores are ordered ahead of all later stores in
  /// the posted channel (§IV.A / §VI).
  [[nodiscard]] sim::Task<Status> sfence();

  // ---- statistics ----------------------------------------------------------

  [[nodiscard]] std::uint64_t stores() const { return stores_; }
  [[nodiscard]] std::uint64_t loads() const { return loads_; }
  [[nodiscard]] std::uint64_t sfences() const { return sfences_; }

 private:
  sim::Engine& engine_;
  std::string name_;
  Northbridge& nb_;
  MtrrFile mtrr_;
  WriteCombiningUnit wc_;

  std::uint64_t stores_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t sfences_ = 0;
};

}  // namespace tcc::opteron

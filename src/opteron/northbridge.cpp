#include "opteron/northbridge.hpp"

#include <utility>

#include "common/log.hpp"
#include "telemetry/metrics.hpp"

namespace tcc::opteron {

#if TCC_TELEMETRY_ENABLED
namespace {

/// Cumulative address-map counters across every northbridge in the process
/// (see docs/OBSERVABILITY.md for the catalogue).
struct NbMetrics {
  telemetry::Counter& route_lookups = telemetry::MetricsRegistry::global().counter(
      "opteron.nb.route_lookups");
  telemetry::Counter& dram_hits =
      telemetry::MetricsRegistry::global().counter("opteron.nb.dram_hits");
  telemetry::Counter& mmio_hits =
      telemetry::MetricsRegistry::global().counter("opteron.nb.mmio_hits");
  telemetry::Counter& master_aborts = telemetry::MetricsRegistry::global().counter(
      "opteron.nb.master_aborts");
  telemetry::Counter& forwarded = telemetry::MetricsRegistry::global().counter(
      "opteron.nb.requests_forwarded");
  telemetry::Counter& sunk =
      telemetry::MetricsRegistry::global().counter("opteron.nb.requests_sunk");
  telemetry::Counter& adaptive_escapes = telemetry::MetricsRegistry::global().counter(
      "opteron.nb.adaptive_escapes");
};

NbMetrics& nb_metrics() {
  static NbMetrics m;
  return m;
}

}  // namespace
#endif  // TCC_TELEMETRY_ENABLED

Northbridge::Northbridge(sim::Engine& engine, std::string name, MemoryController& mc,
                         int outbound_depth)
    : engine_(engine),
      name_(std::move(name)),
      mc_(mc),
      outbound_depth_(outbound_depth),
      tag_freed_(std::make_unique<sim::Trigger>(engine)) {
  ingress_.resize(kMaxLinks);
  outbound_.resize(kMaxLinks);
  for (auto& p : pending_) {
    p = std::make_unique<PendingRead>();
    p->ready = std::make_unique<sim::Trigger>(engine_);
  }
}

void Northbridge::attach_link(int index, ht::HtEndpoint& endpoint) {
  TCC_ASSERT(index >= 0 && index < kMaxLinks, "link index out of range");
  TCC_ASSERT(links_[static_cast<std::size_t>(index)] == nullptr,
             "link port already attached");
  links_[static_cast<std::size_t>(index)] = &endpoint;
  outbound_[static_cast<std::size_t>(index)] = std::make_unique<sim::BoundedChannel<ht::Packet>>(
      engine_, static_cast<std::size_t>(outbound_depth_));
  engine_.spawn(ingress_process(index));
  engine_.spawn(egress_process(index));
}

Northbridge::Route Northbridge::route_request(PhysAddr addr) const {
  TCC_METRIC(nb_metrics().route_lookups.inc());
  // Stage 1: DRAM base/limit -> home NodeID (§IV.C).
  if (const DramRangeReg* d = regs_.dram_lookup(addr)) {
    TCC_METRIC(nb_metrics().dram_hits.inc());
    if (d->dst_node == regs_.node_id) {
      return Route{Route::Kind::kLocalMemory, -1, true};
    }
    const RouteReg& r = regs_.routes.at(static_cast<std::size_t>(d->dst_node));
    if (r.request_link == RouteReg::kSelf) {
      return Route{Route::Kind::kLocalMemory, -1, true};
    }
    return Route{Route::Kind::kLink, r.request_link, true};
  }
  // Stage 2: MMIO base/limit -> egress link directly.
  if (const MmioRangeReg* m = regs_.mmio_lookup(addr)) {
    TCC_METRIC(nb_metrics().mmio_hits.inc());
    return Route{Route::Kind::kLink, m->dst_link, m->non_posted_allowed};
  }
  return Route{Route::Kind::kMasterAbort, -1, false};
}

sim::Task<Status> Northbridge::core_posted_write(ht::Packet packet) {
  // Posted writes are fire-and-forget: the address-map lookup is pipelined
  // inside the northbridge and must not stall the issuing core (it is
  // charged on the egress/local-sink path instead). The core only blocks
  // here when the outbound queue is full — that is the real backpressure.
  packet.src.node = static_cast<std::uint8_t>(regs_.node_id);
  co_return co_await dispatch(route_request(packet.address), std::move(packet),
                              Ingress{Ingress::Kind::kCore, -1});
}

sim::Task<Status> Northbridge::core_broadcast() {
  co_await engine_.delay(kNbLookup);
  ++irqs_;  // delivered locally as well
  for (int i = 0; i < kMaxLinks; ++i) {
    const bool is_tcc = (regs_.tccluster_links >> i) & 1u;
    const bool masked = (regs_.broadcast_forward_mask >> i) & 1u;
    if (links_[static_cast<std::size_t>(i)] == nullptr || !masked) continue;
    if (regs_.tccluster_mode && is_tcc && regs_.suppress_remote_broadcasts) {
      ++regs_.dropped_broadcasts;
      continue;
    }
    ht::Packet b = ht::Packet::broadcast(PhysAddr{0},
                                         {static_cast<std::uint8_t>(regs_.node_id), 0, 0});
    b.coherent = links_[static_cast<std::size_t>(i)]->regs().kind == ht::LinkKind::kCoherent;
    co_await outbound_[static_cast<std::size_t>(i)]->push(std::move(b));
  }
  co_return Status{};
}

sim::Task<Status> Northbridge::dispatch(Route route, ht::Packet packet, Ingress from) {
  switch (route.kind) {
    case Route::Kind::kLocalMemory: {
      TCC_ASSERT(packet.command == ht::Command::kSizedWritePosted,
                 "dispatch(kLocalMemory) only handles posted writes here");
      ++sunk_;
      TCC_METRIC(nb_metrics().sunk.inc());
      if (from.kind == Ingress::Kind::kLink &&
          links_[static_cast<std::size_t>(from.link)]->regs().kind ==
              ht::LinkKind::kNonCoherent) {
        ++regs_.io_bridge_conversions;  // ncHT -> cHT on the way to DRAM
      }
      if (from.kind == Ingress::Kind::kCore) {
        // Core-side sink: the lookup/crossbar traversal happens inside the
        // northbridge pipeline, off the core's critical path.
        engine_.schedule(kNbLookup, [this, p = std::move(packet)] {
          mc_.post_write(p.address, p.data);
        });
      } else {
        mc_.post_write(packet.address, packet.data);
      }
      co_return Status{};
    }
    case Route::Kind::kLink: {
      // Opt-in adaptive escape (firmware programs the table only when the
      // plan was built with adaptive_routing): a posted write whose primary
      // egress queue would block may take the planner-approved alternate.
      // Both ports are minimal for the address, so escaping never lengthens
      // the path — congestion picks between shortest paths, nothing more.
      if (packet.command == ht::Command::kSizedWritePosted) {
        if (const AdaptiveRouteReg* ar = regs_.adaptive_lookup(packet.address)) {
          const int alt = ar->alt_link;
          if (ar->primary_link == route.link && alt != route.link &&
              alt >= 0 && alt < kMaxLinks &&
              links_[static_cast<std::size_t>(alt)] != nullptr &&
              !(from.kind == Ingress::Kind::kLink && alt == from.link) &&
              outbound_[static_cast<std::size_t>(route.link)]->full() &&
              !outbound_[static_cast<std::size_t>(alt)]->full()) {
            route.link = alt;
            ++adaptive_escapes_;
            TCC_METRIC(nb_metrics().adaptive_escapes.inc());
          }
        }
      }
      if (from.kind == Ingress::Kind::kLink && route.link == from.link) {
        ++regs_.master_aborts;
        TCC_METRIC(nb_metrics().master_aborts.inc());
        co_return make_error(ErrorCode::kConfigConflict,
                             name_ + ": routing loop, egress == ingress link");
      }
      ht::HtEndpoint* ep = links_[static_cast<std::size_t>(route.link)];
      if (ep == nullptr) {
        ++regs_.master_aborts;
        TCC_METRIC(nb_metrics().master_aborts.inc());
        co_return make_error(ErrorCode::kConfigConflict,
                             name_ + ": route names an unattached link");
      }
      const bool egress_coherent = ep->regs().kind == ht::LinkKind::kCoherent;
      if (packet.coherent != egress_coherent) {
        ++regs_.io_bridge_conversions;  // the IO bridge reframes the packet
        packet.coherent = egress_coherent;
      }
      if (from.kind == Ingress::Kind::kLink) {
        ++forwarded_;
        TCC_METRIC(nb_metrics().forwarded.inc());
      }
      co_await outbound_[static_cast<std::size_t>(route.link)]->push(std::move(packet));
      co_return Status{};
    }
    case Route::Kind::kMasterAbort:
    default:
      ++regs_.master_aborts;
      TCC_METRIC(nb_metrics().master_aborts.inc());
      co_return make_error(ErrorCode::kOutOfRange,
                           name_ + ": address matches no DRAM or MMIO range");
  }
}

sim::Task<Result<std::vector<std::uint8_t>>> Northbridge::core_read(PhysAddr addr,
                                                                    std::uint32_t size) {
  co_await engine_.delay(kNbLookup);
  const Route route = route_request(addr);
  switch (route.kind) {
    case Route::Kind::kLocalMemory: {
      std::vector<std::uint8_t> out(size);
      co_await mc_.timed_read(addr, out);
      co_return out;
    }
    case Route::Kind::kLink: {
      const bool is_tcc = (regs_.tccluster_links >> route.link) & 1u;
      if (is_tcc) {
        // §IV.A: responses cannot be routed across a TCCluster fabric; the
        // driver forbids loads from remote apertures.
        co_return make_error(ErrorCode::kUnsupported,
                             name_ + ": load from TCCluster aperture (write-only network)");
      }
      if (!route.non_posted_allowed) {
        co_return make_error(ErrorCode::kUnsupported,
                             name_ + ": non-posted requests disabled for this MMIO range");
      }
      const int tag = co_await alloc_tag();
      ht::Packet rd = ht::Packet::sized_read(
          addr, size,
          {static_cast<std::uint8_t>(regs_.node_id), 0, static_cast<std::uint8_t>(tag)});
      rd.coherent =
          links_[static_cast<std::size_t>(route.link)]->regs().kind == ht::LinkKind::kCoherent;
      co_await outbound_[static_cast<std::size_t>(route.link)]->push(std::move(rd));
      PendingRead& p = *pending_[static_cast<std::size_t>(tag)];
      while (!p.done) {
        co_await p.ready->wait();
      }
      std::vector<std::uint8_t> data = std::move(p.data);
      free_tag(tag);
      co_return data;
    }
    case Route::Kind::kMasterAbort:
    default:
      ++regs_.master_aborts;
      TCC_METRIC(nb_metrics().master_aborts.inc());
      co_return make_error(ErrorCode::kOutOfRange,
                           name_ + ": read matches no DRAM or MMIO range");
  }
}

sim::Task<void> Northbridge::drain_outbound() {
  for (auto& q : outbound_) {
    if (q) co_await q->wait_empty();
  }
}

sim::Task<void> Northbridge::ingress_process(int link_index) {
  ht::HtEndpoint& ep = *links_[static_cast<std::size_t>(link_index)];
  for (;;) {
    ht::Packet p = co_await ep.receive();
    co_await engine_.delay(kNbLookup);
    co_await handle_ingress(link_index, std::move(p));
  }
}

sim::Task<void> Northbridge::handle_ingress(int link_index, ht::Packet packet) {
  const bool ingress_is_tcc = (regs_.tccluster_links >> link_index) & 1u;

  if (packet.is_response()) {
    if (packet.src.node == regs_.node_id) {
      PendingRead& p = *pending_[packet.src.tag];
      p.data = std::move(packet.data);
      p.done = true;
      p.ready->notify();
      co_return;
    }
    // Response for another node: forward along the response route.
    const RouteReg& r = regs_.routes.at(packet.src.node % kMaxCoherentNodes);
    if (r.response_link == RouteReg::kSelf ||
        links_[static_cast<std::size_t>(r.response_link)] == nullptr) {
      ++regs_.master_aborts;  // unroutable response — the §IV.A failure
      TCC_METRIC(nb_metrics().master_aborts.inc());
      co_return;
    }
    ++forwarded_;
    TCC_METRIC(nb_metrics().forwarded.inc());
    co_await outbound_[static_cast<std::size_t>(r.response_link)]->push(std::move(packet));
    co_return;
  }

  if (packet.command == ht::Command::kBroadcast) {
    ++irqs_;
    for (int i = 0; i < kMaxLinks; ++i) {
      if (i == link_index || links_[static_cast<std::size_t>(i)] == nullptr) continue;
      if (((regs_.broadcast_forward_mask >> i) & 1u) == 0) continue;
      const bool is_tcc = (regs_.tccluster_links >> i) & 1u;
      if (regs_.tccluster_mode && is_tcc && regs_.suppress_remote_broadcasts) {
        ++regs_.dropped_broadcasts;
        continue;
      }
      ht::Packet copy = packet;
      co_await outbound_[static_cast<std::size_t>(i)]->push(std::move(copy));
    }
    co_return;
  }

  if (packet.command == ht::Command::kSizedRead ||
      packet.command == ht::Command::kFlush ||
      packet.command == ht::Command::kSizedWriteNonPosted) {
    const Route route = route_request(packet.address);
    if (route.kind == Route::Kind::kLocalMemory) {
      if (regs_.tccluster_mode && ingress_is_tcc) {
        // No way to route the response back (every TCCluster node claims
        // NodeID 0): the request is dropped and counted. §IV.A.
        ++regs_.dropped_reads;
        co_return;
      }
      ht::HtEndpoint& back = *links_[static_cast<std::size_t>(link_index)];
      if (packet.command == ht::Command::kSizedRead) {
        std::vector<std::uint8_t> data(packet.size);
        co_await mc_.timed_read(packet.address, data);
        ht::Packet resp = ht::Packet::read_response(packet.src, data);
        resp.coherent = back.regs().kind == ht::LinkKind::kCoherent;
        co_await back.send_blocking(std::move(resp));
      } else {
        if (packet.command == ht::Command::kSizedWriteNonPosted) {
          mc_.post_write(packet.address, packet.data);
          ++sunk_;
          TCC_METRIC(nb_metrics().sunk.inc());
        }
        ht::Packet resp = ht::Packet::target_done(packet.src);
        resp.coherent = back.regs().kind == ht::LinkKind::kCoherent;
        co_await back.send_blocking(std::move(resp));
      }
      co_return;
    }
    Status s = co_await dispatch(route, std::move(packet),
                                 Ingress{Ingress::Kind::kLink, link_index});
    if (!s.ok()) {
      TCC_DEBUG("nb", "%s: dropped non-posted request: %s", name_.c_str(),
                s.error().to_string().c_str());
    }
    co_return;
  }

  // Posted write.
  Status s = co_await dispatch(route_request(packet.address), std::move(packet),
                               Ingress{Ingress::Kind::kLink, link_index});
  if (!s.ok()) {
    TCC_DEBUG("nb", "%s: dropped posted write: %s", name_.c_str(),
              s.error().to_string().c_str());
  }
}

sim::Task<void> Northbridge::egress_process(int link_index) {
  sim::BoundedChannel<ht::Packet>& q = *outbound_[static_cast<std::size_t>(link_index)];
  ht::HtEndpoint& ep = *links_[static_cast<std::size_t>(link_index)];
  for (;;) {
    ht::Packet p = co_await q.pop();
    co_await engine_.delay(kNbTxOverhead);
    Status s = co_await ep.send_blocking(std::move(p));
    if (!s.ok()) {
      TCC_WARN("nb", "%s: egress send failed on link %d: %s", name_.c_str(), link_index,
               s.error().to_string().c_str());
    }
  }
}

sim::Task<int> Northbridge::alloc_tag() {
  while (free_tags_ == 0) {
    co_await tag_freed_->wait();
  }
  for (int i = 0; i < kResponseTags; ++i) {
    if (!pending_[static_cast<std::size_t>(i)]->done &&
        pending_[static_cast<std::size_t>(i)]->in_use == false) {
      pending_[static_cast<std::size_t>(i)]->in_use = true;
      --free_tags_;
      co_return i;
    }
  }
  TCC_ASSERT(false, "tag accounting out of sync");
  co_return -1;
}

void Northbridge::free_tag(int tag) {
  PendingRead& p = *pending_[static_cast<std::size_t>(tag)];
  p.in_use = false;
  p.done = false;
  p.data.clear();
  ++free_tags_;
  tag_freed_->notify();
}

}  // namespace tcc::opteron

// Memory Type Range Registers.
//
// The TCCluster firmware reprograms the MTRRs so that the remote aperture is
// write-combining (sends become max-sized HT packets) and the local receive
// rings are uncacheable (polls always reach DRAM, since TCCluster writes
// cannot generate cache invalidations on the receiver — §V/§VI).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tcc::opteron {

enum class MemType : std::uint8_t {
  kUncacheable,     // UC: every access is a single un-buffered transaction
  kWriteCombining,  // WC: stores collect in WC buffers, loads are uncached
  kWriteBack,       // WB: normal cacheable memory
};

[[nodiscard]] const char* to_string(MemType t);

/// A variable-range MTRR entry. Real MTRRs require power-of-two alignment;
/// we enforce 4 KiB granularity which is what the firmware uses.
struct MtrrEntry {
  AddrRange range;
  MemType type = MemType::kWriteBack;
};

/// The MTRR file of one core (mirrored across cores by firmware).
class MtrrFile {
 public:
  /// Default type for addresses not covered by any entry.
  explicit MtrrFile(MemType default_type = MemType::kUncacheable)
      : default_type_(default_type) {}

  /// Install an entry; later entries take precedence over earlier ones
  /// (firmware programs most-specific last). 4 KiB granularity enforced.
  Status set(AddrRange range, MemType type);

  /// Remove all entries overlapping `range`.
  void clear(AddrRange range);

  [[nodiscard]] MemType type_of(PhysAddr addr) const;

  /// True if [addr, addr+len) has a single uniform memory type.
  [[nodiscard]] bool uniform(PhysAddr addr, std::uint64_t len) const;

  [[nodiscard]] const std::vector<MtrrEntry>& entries() const { return entries_; }
  [[nodiscard]] MemType default_type() const { return default_type_; }
  void set_default(MemType t) { default_type_ = t; }

 private:
  MemType default_type_;
  std::vector<MtrrEntry> entries_;
};

}  // namespace tcc::opteron

// Northbridge configuration-space registers (the BKDG function 1 subset the
// TCCluster firmware programs: DRAM base/limit, MMIO base/limit, routing
// table, NodeID, and the warm-reset-latched link controls).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tcc::opteron {

/// NodeID register value processors hold out of reset; the BSP's depth-first
/// enumeration uses 7 as the "not yet visited" sentinel (§IV.E).
inline constexpr int kUnassignedNodeId = 7;

/// Number of DRAM / MMIO base-limit register pairs (BKDG F1x40..F1x7C and
/// F1x80..F1xBC: 8 DRAM ranges, 8 MMIO ranges).
inline constexpr int kNumDramRanges = 8;
inline constexpr int kNumMmioRanges = 8;

/// Maximum nodes addressable by the coherent fabric (3-bit NodeID).
inline constexpr int kMaxCoherentNodes = 8;

/// Maximum HT links per Opteron package (§III: up to four).
inline constexpr int kMaxLinks = 4;

/// One DRAM base/limit pair: addresses in `range` are homed at `dst_node`.
struct DramRangeReg {
  bool enabled = false;
  AddrRange range;
  int dst_node = 0;
};

/// One MMIO base/limit pair: addresses in `range` leave the chip through
/// `dst_link` (the "home is always NodeID 0, so the base/limit registers
/// hand out the destination link directly" trick of §IV.C).
struct MmioRangeReg {
  bool enabled = false;
  AddrRange range;
  int dst_link = 0;
  bool non_posted_allowed = true;  ///< cleared on TCCluster ranges
};

/// Per-NodeID routing table entry (BKDG F0x40..F0x5C): which link requests
/// for that node leave on; kSelf means the packet is sunk locally.
struct RouteReg {
  static constexpr int kSelf = -1;
  int request_link = kSelf;
  int response_link = kSelf;
  int broadcast_links = 0;  ///< bitmask of links to replicate broadcasts onto
};

/// One adaptive-escape entry (opt-in, ClusterConfig::adaptive_routing): when
/// a posted write to `range` would leave on `primary_link` but that queue is
/// full, it may leave on `alt_link` instead. The planner only emits entries
/// whose alternate is minimal for every address in the range, so escapes
/// never push a packet off a shortest path (no livelock).
struct AdaptiveRouteReg {
  bool enabled = false;
  AddrRange range;
  int primary_link = 0;
  int alt_link = 0;
};

/// The register file of one northbridge.
struct NorthbridgeRegs {
  int node_id = kUnassignedNodeId;

  std::array<DramRangeReg, kNumDramRanges> dram{};
  std::array<MmioRangeReg, kNumMmioRanges> mmio{};
  std::array<RouteReg, kMaxCoherentNodes> routes{};
  std::array<AdaptiveRouteReg, kNumMmioRanges> adaptive{};

  /// TCCluster mode (§IV/§V): set by firmware after forcing links
  /// non-coherent. Changes two behaviours: arriving non-posted requests on
  /// TCCluster links cannot be answered (no response routing — they are
  /// dropped and counted) and broadcasts are never forwarded onto TCCluster
  /// links (the custom-kernel interrupt rule of §VI).
  bool tccluster_mode = false;

  /// Bitmask of links that are TCCluster (non-coherent processor) links.
  std::uint32_t tccluster_links = 0;

  /// Bitmask of links broadcasts may be replicated onto (coherent fabric
  /// within a Supernode). Firmware sets this during coherent enumeration.
  std::uint32_t broadcast_forward_mask = 0;

  /// The custom-kernel rule of §VI: interrupts must never cross the network.
  /// A stock kernel would leave this false — the interrupt-storm failure the
  /// paper's kernel modification exists to prevent.
  bool suppress_remote_broadcasts = true;

  // ---- error/diagnostic counters ----
  std::uint64_t master_aborts = 0;     ///< requests matching no range
  std::uint64_t dropped_reads = 0;     ///< non-posted requests dropped in TCCluster mode
  std::uint64_t dropped_broadcasts = 0;
  std::uint64_t io_bridge_conversions = 0;  ///< cHT<->ncHT conversions

  /// Find the DRAM range containing `a`, if any (last match wins, like MTRRs;
  /// firmware keeps ranges disjoint so order is irrelevant in practice).
  [[nodiscard]] const DramRangeReg* dram_lookup(PhysAddr a) const {
    const DramRangeReg* hit = nullptr;
    for (const auto& r : dram) {
      if (r.enabled && r.range.contains(a)) hit = &r;
    }
    return hit;
  }

  [[nodiscard]] const MmioRangeReg* mmio_lookup(PhysAddr a) const {
    const MmioRangeReg* hit = nullptr;
    for (const auto& r : mmio) {
      if (r.enabled && r.range.contains(a)) hit = &r;
    }
    return hit;
  }

  /// Install the first free DRAM register pair.
  Status add_dram_range(AddrRange range, int dst_node) {
    for (auto& r : dram) {
      if (!r.enabled) {
        r = DramRangeReg{true, range, dst_node};
        return {};
      }
    }
    return make_error(ErrorCode::kResourceExhausted, "all 8 DRAM range registers in use");
  }

  Status add_mmio_range(AddrRange range, int dst_link, bool non_posted_allowed) {
    for (auto& r : mmio) {
      if (!r.enabled) {
        r = MmioRangeReg{true, range, dst_link, non_posted_allowed};
        return {};
      }
    }
    return make_error(ErrorCode::kResourceExhausted, "all 8 MMIO range registers in use");
  }

  [[nodiscard]] const AdaptiveRouteReg* adaptive_lookup(PhysAddr a) const {
    const AdaptiveRouteReg* hit = nullptr;
    for (const auto& r : adaptive) {
      if (r.enabled && r.range.contains(a)) hit = &r;
    }
    return hit;
  }

  Status add_adaptive_route(AddrRange range, int primary_link, int alt_link) {
    for (auto& r : adaptive) {
      if (!r.enabled) {
        r = AdaptiveRouteReg{true, range, primary_link, alt_link};
        return {};
      }
    }
    return make_error(ErrorCode::kResourceExhausted,
                      "all 8 adaptive route registers in use");
  }

  void clear_ranges() {
    dram.fill(DramRangeReg{});
    mmio.fill(MmioRangeReg{});
    adaptive.fill(AdaptiveRouteReg{});
  }
};

}  // namespace tcc::opteron

// Opteron ("Shanghai", K10) timing calibration.
//
// These constants are the single source of the absolute numbers our benches
// produce. They are chosen from published K10/DDR2 characteristics and then
// cross-checked against the paper's measured results (Fig. 6/7):
//
//   strict-ordered stream  = 64 B / (issue + dispatch + sfence) = 2000 MB/s
//   weakly-ordered stream  = 64 B / (wire 22.8 ns + NB gap 1 ns) = 2689 MB/s
//   64 B half-round-trip  ~= 227 ns (see latency budget in DESIGN.md §4)
//
// Keep this file honest: every constant cites what it models.
#pragma once

#include "common/units.hpp"

namespace tcc::opteron {

/// Core clock: 2.8 GHz Shanghai (paper §VI).
inline constexpr double kCoreGhz = 2.8;

/// Issue cost of one 64-bit store into a write-combining buffer. Four cycles
/// of store-queue occupancy at 2.8 GHz ≈ 1.5 ns; eight of them fill a 64 B
/// line in 12 ns — a 5.3 GB/s issue rate, which is exactly the "caching
/// structure" rate behind the paper's 5300 MB/s Fig. 6 artifact point.
inline constexpr Picoseconds kStoreIssue = Picoseconds{1'500};

/// Issue cost of one 64-bit load instruction (address generation + queue).
inline constexpr Picoseconds kLoadIssue = Picoseconds{1'000};

/// Handing a committed write-combining buffer to the system request
/// interface / northbridge outbound queue. Mostly pipelined with the next
/// stores; the residual stall is small.
inline constexpr Picoseconds kWcDispatch = Picoseconds{500};

/// Pipeline cost of Sfence beyond the WC drain it forces: store-queue flush
/// and serialization of the instruction stream (~55 cycles). Calibrated so
/// strict-ordered streaming = 64 B / (12 + 0.5 + 19.5 ns) = 2000 MB/s, the
/// paper's Fig. 6 strict plateau.
inline constexpr Picoseconds kSfencePipeline = Picoseconds{19'500};

/// Northbridge per-request scheduling gap on the outbound link queue
/// (includes the pipelined address-map lookup for posted requests).
inline constexpr Picoseconds kNbTxOverhead = Picoseconds{2'000};

/// Address-map + routing-table lookup and crossbar traversal for a request
/// entering the northbridge (from a core or from a link).
inline constexpr Picoseconds kNbLookup = Picoseconds{8'000};

/// Cache-hit load-to-use for write-back (cacheable) local memory.
inline constexpr Picoseconds kCacheHitLatency = Picoseconds{5'000};

/// DDR2-800 closed-page read: RAS+CAS+transfer+return ≈ 60 ns. Paid by every
/// uncacheable poll read (the receive path of §VI).
inline constexpr Picoseconds kMemReadLatency = Picoseconds{60'000};

/// Memory-controller write acceptance to visibility: the posted write is
/// buffered and becomes readable after the DRAM array write and the
/// write-to-read turnaround complete.
inline constexpr Picoseconds kMemWriteLatency = Picoseconds{40'000};

/// Per-iteration overhead of a software poll loop (compare, branch, loop
/// bookkeeping — ~28 cycles at 2.8 GHz).
inline constexpr Picoseconds kPollLoopOverhead = Picoseconds{10'000};

/// Depth of the northbridge outbound queue per link (requests).
inline constexpr int kNbOutboundDepth = 8;

/// Number of write-combining buffers per core (K10: 8 x 64 B).
inline constexpr int kWcBuffers = 8;
inline constexpr std::uint64_t kWcLineBytes = 64;

/// Outstanding non-posted tags per northbridge (response matching table).
inline constexpr int kResponseTags = 32;

}  // namespace tcc::opteron

#include "topology/plan.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/strings.hpp"

namespace tcc::topology {

namespace {

constexpr int kPortsPerChip = 4;  // Opteron: four HT links (§III)
constexpr int kMmioRegisterBudget = 8;

/// Directions a Supernode at position `s` needs external ports for.
std::vector<Direction> needed_directions(const ClusterConfig& cfg, int s) {
  std::vector<Direction> dirs;
  switch (cfg.shape) {
    case ClusterShape::kCable:
      dirs.push_back(s == 0 ? Direction::kEast : Direction::kWest);
      break;
    case ClusterShape::kChain:
      if (s > 0) dirs.push_back(Direction::kWest);
      if (s < cfg.nx - 1) dirs.push_back(Direction::kEast);
      break;
    case ClusterShape::kRing:
      dirs.push_back(Direction::kWest);
      dirs.push_back(Direction::kEast);
      break;
    case ClusterShape::kMesh2D: {
      const int x = s % cfg.nx;
      const int y = s / cfg.nx;
      if (x > 0) dirs.push_back(Direction::kWest);
      if (x < cfg.nx - 1) dirs.push_back(Direction::kEast);
      if (y > 0) dirs.push_back(Direction::kNorth);
      if (y < cfg.ny - 1) dirs.push_back(Direction::kSouth);
      break;
    }
    case ClusterShape::kTorus2D:
      if (cfg.nx > 1) {
        dirs.push_back(Direction::kWest);
        dirs.push_back(Direction::kEast);
      }
      if (cfg.ny > 1) {
        dirs.push_back(Direction::kNorth);
        dirs.push_back(Direction::kSouth);
      }
      break;
  }
  return dirs;
}

/// For Supernode `s`, the egress direction for traffic to Supernode `t`.
/// SplitMix64 finalizer: spreads a structured key over the full 64-bit space
/// so per-wire fault streams are decorrelated even for adjacent wire indices.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Direction direction_for(const ClusterConfig& cfg, int s, int t) {
  switch (cfg.shape) {
    case ClusterShape::kCable:
    case ClusterShape::kChain:
      return t < s ? Direction::kWest : Direction::kEast;
    case ClusterShape::kRing: {
      const int n = cfg.nx;
      const int right = ((t - s) % n + n) % n;
      const int left = n - right;
      return right <= left ? Direction::kEast : Direction::kWest;  // tie -> East
    }
    case ClusterShape::kMesh2D: {
      const int y = s / cfg.nx;
      const int ty = t / cfg.nx;
      // Y-then-X dimension order: settle the row first.
      if (ty < y) return Direction::kNorth;
      if (ty > y) return Direction::kSouth;
      return (t % cfg.nx) < (s % cfg.nx) ? Direction::kWest : Direction::kEast;
    }
    case ClusterShape::kTorus2D: {
      const int y = s / cfg.nx;
      const int ty = t / cfg.nx;
      if (ty != y) {
        // Shortest way around the vertical ring; ties go South.
        const int down = ((ty - y) % cfg.ny + cfg.ny) % cfg.ny;
        const int up = cfg.ny - down;
        return down <= up ? Direction::kSouth : Direction::kNorth;
      }
      const int right = ((t - s) % cfg.nx + cfg.nx) % cfg.nx;
      const int left = cfg.nx - right;
      return right <= left ? Direction::kEast : Direction::kWest;
    }
  }
  return Direction::kEast;
}

}  // namespace

const char* to_string(ClusterShape s) {
  switch (s) {
    case ClusterShape::kCable: return "cable";
    case ClusterShape::kChain: return "chain";
    case ClusterShape::kRing: return "ring";
    case ClusterShape::kMesh2D: return "mesh2d";
    case ClusterShape::kTorus2D: return "torus2d";
  }
  return "?";
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::kWest: return "west";
    case Direction::kEast: return "east";
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
  }
  return "?";
}

Result<ClusterPlan> ClusterPlan::build(const ClusterConfig& config) {
  // ---- validate -----------------------------------------------------------
  if (config.supernode_size != 1 && config.supernode_size != 2 &&
      config.supernode_size != 4) {
    return make_error(ErrorCode::kInvalidArgument,
                      "supernode_size must be 1, 2 or 4");
  }
  if (config.nx < 1 || config.ny < 1) {
    return make_error(ErrorCode::kInvalidArgument, "cluster dimensions must be >= 1");
  }
  if (config.shape == ClusterShape::kCable && config.nx != 2) {
    return make_error(ErrorCode::kInvalidArgument, "a cable cluster has exactly 2 nodes");
  }
  if (!config.is_2d() && config.ny != 1) {
    return make_error(ErrorCode::kInvalidArgument,
                      "ny > 1 requires a 2-D shape (mesh or torus)");
  }
  if (config.num_supernodes() < 2) {
    return make_error(ErrorCode::kInvalidArgument, "a cluster needs at least 2 Supernodes");
  }
  if (config.is_2d() && config.nx > 1 && config.ny > 1 && config.supernode_size < 2) {
    return make_error(
        ErrorCode::kConfigConflict,
        "a 2-D mesh/torus needs supernode_size >= 2: one Opteron has four HT links, "
        "and four mesh directions plus the southbridge do not fit (this is why "
        "§IV.E introduces Supernodes)");
  }
  if (config.dram_per_chip < 1_MiB || config.dram_per_chip % 4096 != 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "dram_per_chip must be >= 1 MiB and 4 KiB aligned");
  }
  if (config.cable_links < 1 || config.cable_links > 3) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cable_links must be 1..3 (the 4th port is the southbridge)");
  }
  if (config.cable_links > 1 && config.shape != ClusterShape::kCable) {
    return make_error(ErrorCode::kInvalidArgument,
                      "link aggregation is only defined for the cable shape");
  }

  ClusterPlan plan;
  plan.config_ = config;

  const int k = config.supernode_size;
  const int num_sn = config.num_supernodes();
  const std::uint64_t sn_bytes = static_cast<std::uint64_t>(k) * config.dram_per_chip;

  // ---- chips, Supernodes, internal wiring --------------------------------
  std::vector<int> free_port(static_cast<std::size_t>(config.num_chips()), 0);
  auto alloc_port = [&](int chip) -> Result<int> {
    if (free_port[static_cast<std::size_t>(chip)] >= kPortsPerChip) {
      return make_error(ErrorCode::kResourceExhausted,
                        strprintf("chip %d has no free HT port", chip));
    }
    return free_port[static_cast<std::size_t>(chip)]++;
  };

  for (int s = 0; s < num_sn; ++s) {
    SupernodePlan sn;
    sn.index = s;
    sn.range = AddrRange{PhysAddr{config.global_base + static_cast<std::uint64_t>(s) * sn_bytes},
                         sn_bytes};
    for (int m = 0; m < k; ++m) {
      const int chip = s * k + m;
      sn.chips.push_back(chip);
      ChipPlan cp;
      cp.chip = chip;
      cp.supernode = s;
      cp.member = m;
      cp.node_id = m;   // coherent NodeID within the Supernode
      cp.is_bsp = (m == 0);
      cp.dram = AddrRange{
          PhysAddr{config.global_base + static_cast<std::uint64_t>(chip) * config.dram_per_chip},
          config.dram_per_chip};
      plan.chips_.push_back(std::move(cp));
    }

    // Southbridge on the BSP member, always the first port.
    {
      auto p = alloc_port(sn.chips[0]);
      if (!p.ok()) return p.error();
      plan.chips_[static_cast<std::size_t>(sn.chips[0])].southbridge_port = p.value();
    }

    // Internal coherent links: k=2 one link, k=4 a ring.
    auto wire_internal = [&](int ma, int mb) -> Status {
      const int ca = sn.chips[static_cast<std::size_t>(ma)];
      const int cb = sn.chips[static_cast<std::size_t>(mb)];
      auto pa = alloc_port(ca);
      if (!pa.ok()) return pa.error();
      auto pb = alloc_port(cb);
      if (!pb.ok()) return pb.error();
      plan.wires_.push_back(WireSpec{PortRef{ca, pa.value()}, PortRef{cb, pb.value()},
                                     /*tccluster=*/false, config.internal_medium});
      plan.chips_[static_cast<std::size_t>(ca)].coherent_ports |= 1u << pa.value();
      plan.chips_[static_cast<std::size_t>(cb)].coherent_ports |= 1u << pb.value();
      plan.chips_[static_cast<std::size_t>(ca)].route_to_member[static_cast<std::size_t>(mb)] =
          pa.value();
      plan.chips_[static_cast<std::size_t>(cb)].route_to_member[static_cast<std::size_t>(ma)] =
          pb.value();
      return {};
    };
    if (k == 2) {
      if (Status st = wire_internal(0, 1); !st.ok()) return st.error();
    } else if (k == 4) {
      for (int m = 0; m < 4; ++m) {
        if (Status st = wire_internal(m, (m + 1) % 4); !st.ok()) return st.error();
      }
      // Two-hop members route via the clockwise neighbour.
      for (int m = 0; m < 4; ++m) {
        ChipPlan& cp = plan.chips_[static_cast<std::size_t>(sn.chips[static_cast<std::size_t>(m)])];
        const int two_away = (m + 2) % 4;
        cp.route_to_member[static_cast<std::size_t>(two_away)] =
            cp.route_to_member[static_cast<std::size_t>((m + 1) % 4)];
      }
    }

    // Allocate one external (TCCluster) port on the member with the most
    // free links.
    auto alloc_external = [&](const char* what) -> Result<PortRef> {
      int best = -1;
      for (int m = 0; m < k; ++m) {
        const int chip = sn.chips[static_cast<std::size_t>(m)];
        if (free_port[static_cast<std::size_t>(chip)] >= kPortsPerChip) continue;
        if (best < 0 || free_port[static_cast<std::size_t>(chip)] <
                            free_port[static_cast<std::size_t>(best)]) {
          best = chip;
        }
      }
      if (best < 0) {
        return make_error(ErrorCode::kResourceExhausted,
                          strprintf("Supernode %d cannot host a %s port: all HT "
                                    "links in use",
                                    s, what));
      }
      auto p = alloc_port(best);
      if (!p.ok()) return p.error();
      plan.chips_[static_cast<std::size_t>(best)].tccluster_ports |= 1u << p.value();
      return PortRef{best, p.value()};
    };

    if (config.shape == ClusterShape::kCable) {
      // Cable link aggregation (§V): cable_links parallel ports.
      for (int l = 0; l < config.cable_links; ++l) {
        auto p = alloc_external("cable");
        if (!p.ok()) return p.error();
        sn.cable_ports.push_back(p.value());
      }
      sn.external[static_cast<std::size_t>(s == 0 ? Direction::kEast : Direction::kWest)] =
          sn.cable_ports[0];
    } else {
      for (Direction d : needed_directions(config, s)) {
        auto p = alloc_external(to_string(d));
        if (!p.ok()) return p.error();
        sn.external[static_cast<std::size_t>(d)] = p.value();
      }
    }

    plan.supernodes_.push_back(std::move(sn));
  }

  // ---- external wiring -----------------------------------------------------
  auto ext = [&](int s, Direction d) -> const std::optional<PortRef>& {
    return plan.supernodes_[static_cast<std::size_t>(s)].external[static_cast<std::size_t>(d)];
  };
  auto wire_external = [&](int sa, Direction da, int sb, Direction db) -> Status {
    const auto& pa = ext(sa, da);
    const auto& pb = ext(sb, db);
    if (!pa || !pb) {
      return make_error(ErrorCode::kConfigConflict, "missing external port for wiring");
    }
    plan.wires_.push_back(WireSpec{*pa, *pb, /*tccluster=*/true, config.external_medium});
    return {};
  };
  switch (config.shape) {
    case ClusterShape::kCable:
      for (int l = 0; l < config.cable_links; ++l) {
        plan.wires_.push_back(WireSpec{plan.supernodes_[0].cable_ports[static_cast<std::size_t>(l)],
                                       plan.supernodes_[1].cable_ports[static_cast<std::size_t>(l)],
                                       /*tccluster=*/true, config.external_medium});
      }
      break;
    case ClusterShape::kChain:
      for (int s = 0; s + 1 < num_sn; ++s) {
        if (Status st = wire_external(s, Direction::kEast, s + 1, Direction::kWest);
            !st.ok()) {
          return st.error();
        }
      }
      break;
    case ClusterShape::kRing:
      for (int s = 0; s < num_sn; ++s) {
        if (Status st =
                wire_external(s, Direction::kEast, (s + 1) % num_sn, Direction::kWest);
            !st.ok()) {
          return st.error();
        }
      }
      break;
    case ClusterShape::kMesh2D:
      for (int y = 0; y < config.ny; ++y) {
        for (int x = 0; x < config.nx; ++x) {
          const int s = y * config.nx + x;
          if (x + 1 < config.nx) {
            if (Status st = wire_external(s, Direction::kEast, s + 1, Direction::kWest);
                !st.ok()) {
              return st.error();
            }
          }
          if (y + 1 < config.ny) {
            if (Status st =
                    wire_external(s, Direction::kSouth, s + config.nx, Direction::kNorth);
                !st.ok()) {
              return st.error();
            }
          }
        }
      }
      break;
    case ClusterShape::kTorus2D:
      for (int y = 0; y < config.ny; ++y) {
        for (int x = 0; x < config.nx; ++x) {
          const int s = y * config.nx + x;
          if (config.nx > 1) {
            const int east = y * config.nx + (x + 1) % config.nx;
            if (Status st = wire_external(s, Direction::kEast, east, Direction::kWest);
                !st.ok()) {
              return st.error();
            }
          }
          if (config.ny > 1) {
            const int south = ((y + 1) % config.ny) * config.nx + x;
            if (Status st = wire_external(s, Direction::kSouth, south, Direction::kNorth);
                !st.ok()) {
              return st.error();
            }
          }
        }
      }
      break;
  }

  // ---- per-wire fault seeds ------------------------------------------------
  // Key on the wire's physical identity (endpoints), not just its index, so
  // the stream survives unrelated wires being added to the list.
  for (std::size_t i = 0; i < plan.wires_.size(); ++i) {
    WireSpec& w = plan.wires_[i];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.a.chip)) << 40) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.a.port)) << 32) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.b.chip)) << 8) ^
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.b.port)) ^ (i << 16);
    w.medium.fault_seed = mix64(mix64(config.seed) ^ key);
  }

  // ---- per-chip address maps ----------------------------------------------
  for (int s = 0; s < num_sn; ++s) {
    // Group remote Supernodes into contiguous runs sharing one direction.
    struct Run {
      int first, last;  // inclusive Supernode range
      Direction dir;
    };
    std::vector<Run> runs;
    for (int t = 0; t < num_sn; ++t) {
      if (t == s) continue;
      const Direction d = direction_for(config, s, t);
      if (!runs.empty() && runs.back().last == t - 1 && runs.back().dir == d) {
        runs.back().last = t;
      } else {
        runs.push_back(Run{t, t, d});
      }
    }
    const SupernodePlan& sn = plan.supernodes_[static_cast<std::size_t>(s)];

    // Resolve runs to (byte range, external port) segments. On a cable the
    // single remote run is striped across the aggregated links (§V).
    struct Segment {
      AddrRange bytes;
      PortRef port;
    };
    std::vector<Segment> segments;
    for (const Run& run : runs) {
      const AddrRange bytes{
          PhysAddr{config.global_base + static_cast<std::uint64_t>(run.first) * sn_bytes},
          static_cast<std::uint64_t>(run.last - run.first + 1) * sn_bytes};
      if (config.shape == ClusterShape::kCable && config.cable_links > 1) {
        const auto stripes = static_cast<std::uint64_t>(config.cable_links);
        const std::uint64_t stripe = bytes.size / stripes / 4096 * 4096;
        std::uint64_t off = 0;
        for (std::uint64_t l = 0; l < stripes; ++l) {
          const std::uint64_t len = l + 1 == stripes ? bytes.size - off : stripe;
          segments.push_back(Segment{AddrRange{bytes.base + off, len},
                                     sn.cable_ports[static_cast<std::size_t>(l)]});
          off += len;
        }
      } else if (config.shape == ClusterShape::kCable) {
        segments.push_back(Segment{bytes, sn.cable_ports[0]});
      } else {
        const auto& port = sn.external[static_cast<std::size_t>(run.dir)];
        TCC_ASSERT(port.has_value(), "direction in use but no external port planned");
        segments.push_back(Segment{bytes, *port});
      }
    }

    // The BSP chip spends one MMIO register pair on the boot-ROM window.
    const int budget_bsp = kMmioRegisterBudget - 1;
    if (static_cast<int>(segments.size()) > budget_bsp) {
      return make_error(ErrorCode::kResourceExhausted,
                        strprintf("Supernode %d needs %d MMIO intervals, but only %d "
                                  "base/limit register pairs remain next to the BSP's "
                                  "ROM window",
                                  s, static_cast<int>(segments.size()), budget_bsp));
    }
    for (int m = 0; m < k; ++m) {
      ChipPlan& cp = plan.chips_[static_cast<std::size_t>(sn.chips[static_cast<std::size_t>(m)])];

      // Peer DRAM within the Supernode.
      for (int pm = 0; pm < k; ++pm) {
        if (pm == m) continue;
        const ChipPlan& peer =
            plan.chips_[static_cast<std::size_t>(sn.chips[static_cast<std::size_t>(pm)])];
        cp.peer_dram.push_back(ChipPlan::PeerDram{peer.dram, peer.node_id});
      }

      // MMIO intervals: egress on the member owning the segment's port, or
      // towards that member over the internal fabric.
      for (const Segment& seg : segments) {
        int egress;
        if (seg.port.chip == cp.chip) {
          egress = seg.port.port;
        } else {
          const int owner_member =
              plan.chips_[static_cast<std::size_t>(seg.port.chip)].member;
          egress = cp.route_to_member[static_cast<std::size_t>(owner_member)];
          TCC_ASSERT(egress >= 0, "no internal route to the port-owning member");
        }
        cp.mmio.push_back(MmioPlan{seg.bytes, egress});
      }
    }
  }

  return plan;
}

AddrRange ClusterPlan::global_range() const {
  const std::uint64_t total =
      static_cast<std::uint64_t>(config_.num_chips()) * config_.dram_per_chip;
  return AddrRange{PhysAddr{config_.global_base}, total};
}

Result<int> ClusterPlan::supernode_of(PhysAddr addr) const {
  if (!global_range().contains(addr)) {
    return make_error(ErrorCode::kOutOfRange, "address outside the global space");
  }
  const std::uint64_t sn_bytes =
      static_cast<std::uint64_t>(config_.supernode_size) * config_.dram_per_chip;
  return static_cast<int>((addr.value() - config_.global_base) / sn_bytes);
}

Result<int> ClusterPlan::chip_of(PhysAddr addr) const {
  if (!global_range().contains(addr)) {
    return make_error(ErrorCode::kOutOfRange, "address outside the global space");
  }
  return static_cast<int>((addr.value() - config_.global_base) / config_.dram_per_chip);
}

Result<std::optional<int>> ClusterPlan::next_hop(int chip, PhysAddr addr) const {
  if (chip < 0 || chip >= static_cast<int>(chips_.size())) {
    return make_error(ErrorCode::kOutOfRange, "bad chip index");
  }
  const ChipPlan& cp = chips_[static_cast<std::size_t>(chip)];
  if (cp.dram.contains(addr)) return std::optional<int>{};
  for (const auto& peer : cp.peer_dram) {
    if (peer.range.contains(addr)) {
      const int port = cp.route_to_member[static_cast<std::size_t>(peer.node_id)];
      if (port < 0) {
        return make_error(ErrorCode::kConfigConflict, "no route to peer member");
      }
      return std::optional<int>{port};
    }
  }
  for (const auto& m : cp.mmio) {
    if (m.range.contains(addr)) return std::optional<int>{m.port};
  }
  return make_error(ErrorCode::kOutOfRange,
                    strprintf("chip %d: address 0x%llx matches no range", chip,
                              static_cast<unsigned long long>(addr.value())));
}

Result<std::vector<int>> ClusterPlan::trace_route(int chip, PhysAddr addr,
                                                  int max_hops) const {
  // Build the port->peer map once per call; plans are small.
  std::map<std::pair<int, int>, PortRef> peer;
  for (const WireSpec& w : wires_) {
    peer[{w.a.chip, w.a.port}] = w.b;
    peer[{w.b.chip, w.b.port}] = w.a;
  }
  std::vector<int> visited{chip};
  int cur = chip;
  for (int hop = 0; hop < max_hops; ++hop) {
    auto nh = next_hop(cur, addr);
    if (!nh.ok()) return nh.error();
    if (!nh.value().has_value()) return visited;  // sunk
    auto it = peer.find({cur, *nh.value()});
    if (it == peer.end()) {
      return make_error(ErrorCode::kConfigConflict,
                        strprintf("chip %d routes out port %d which is not wired", cur,
                                  *nh.value()));
    }
    cur = it->second.chip;
    visited.push_back(cur);
  }
  return make_error(ErrorCode::kConfigConflict, "routing loop: exceeded max hops");
}

Result<ClusterPlan> ClusterPlan::route_around(
    const std::vector<std::size_t>& failed_wires) const {
  constexpr int kInf = 1 << 30;
  const int n = static_cast<int>(chips_.size());
  const int num_sn = static_cast<int>(supernodes_.size());
  const int k = config_.supernode_size;

  std::vector<bool> dead(wires_.size(), false);
  for (std::size_t i : failed_wires) {
    if (i >= wires_.size()) {
      return make_error(ErrorCode::kOutOfRange,
                        strprintf("failed wire index %zu out of range", i));
    }
    dead[i] = true;
  }

  // Surviving adjacency: chip x port -> peer chip. Southbridge ports carry
  // no plan wire and stay -1.
  struct Edge {
    int peer = -1;
    bool internal = false;
  };
  std::vector<std::array<Edge, kPortsPerChip>> adj(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    if (dead[i]) continue;
    const WireSpec& w = wires_[i];
    adj[static_cast<std::size_t>(w.a.chip)][static_cast<std::size_t>(w.a.port)] =
        Edge{w.b.chip, !w.tccluster};
    adj[static_cast<std::size_t>(w.b.chip)][static_cast<std::size_t>(w.b.port)] =
        Edge{w.a.chip, !w.tccluster};
  }

  // Multi-source BFS distance from `targets` over surviving wires. With
  // internal_only, only intra-Supernode coherent links participate.
  auto bfs = [&](const std::vector<int>& targets, bool internal_only) {
    std::vector<int> dist(static_cast<std::size_t>(n), kInf);
    std::deque<int> q;
    for (int t : targets) {
      dist[static_cast<std::size_t>(t)] = 0;
      q.push_back(t);
    }
    while (!q.empty()) {
      const int c = q.front();
      q.pop_front();
      for (int p = 0; p < kPortsPerChip; ++p) {
        const Edge& e = adj[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)];
        if (e.peer < 0 || (internal_only && !e.internal)) continue;
        if (dist[static_cast<std::size_t>(e.peer)] != kInf) continue;
        dist[static_cast<std::size_t>(e.peer)] = dist[static_cast<std::size_t>(c)] + 1;
        q.push_back(e.peer);
      }
    }
    return dist;
  };
  // Lowest-numbered port on `c` one step closer to the BFS targets. Every
  // chip routing strictly downhill on the same distance field is what makes
  // the degraded tables loop-free.
  auto downhill_port = [&](const std::vector<int>& dist, int c, bool internal_only) {
    for (int p = 0; p < kPortsPerChip; ++p) {
      const Edge& e = adj[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)];
      if (e.peer < 0 || (internal_only && !e.internal)) continue;
      if (dist[static_cast<std::size_t>(e.peer)] ==
          dist[static_cast<std::size_t>(c)] - 1) {
        return p;
      }
    }
    return -1;
  };

  ClusterPlan degraded = *this;
  std::string unreachable;
  auto note_unreachable = [&](const std::string& what) {
    if (!unreachable.empty()) unreachable += "; ";
    unreachable += what;
  };

  // Intra-Supernode coherent routes (a failed internal wire on a 4-ring has
  // a detour the other way around; on a pair it partitions the Supernode).
  for (const SupernodePlan& sn : supernodes_) {
    for (int m = 0; m < k; ++m) {
      const int target = sn.chips[static_cast<std::size_t>(m)];
      const auto dist = bfs({target}, /*internal_only=*/true);
      for (int m2 = 0; m2 < k; ++m2) {
        if (m2 == m) continue;
        const int c = sn.chips[static_cast<std::size_t>(m2)];
        ChipPlan& cp = degraded.chips_[static_cast<std::size_t>(c)];
        if (dist[static_cast<std::size_t>(c)] == kInf) {
          note_unreachable(strprintf("chip %d cannot reach member %d of Supernode %d",
                                     c, m, sn.index));
          continue;
        }
        cp.route_to_member[static_cast<std::size_t>(m)] =
            downhill_port(dist, c, /*internal_only=*/true);
      }
    }
  }

  // Remote-Supernode egress: reach ANY chip of the target Supernode — once
  // inside, peer-DRAM windows and the coherent routes above sink the packet.
  std::vector<std::vector<int>> egress(
      static_cast<std::size_t>(num_sn), std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int t = 0; t < num_sn; ++t) {
    const auto dist = bfs(supernodes_[static_cast<std::size_t>(t)].chips,
                          /*internal_only=*/false);
    for (int c = 0; c < n; ++c) {
      if (chips_[static_cast<std::size_t>(c)].supernode == t) continue;
      if (dist[static_cast<std::size_t>(c)] == kInf) {
        note_unreachable(
            strprintf("chip %d cannot reach Supernode %d (partition)", c, t));
        continue;
      }
      egress[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)] =
          downhill_port(dist, c, /*internal_only=*/false);
    }
  }
  if (!unreachable.empty()) {
    return make_error(ErrorCode::kUnavailable,
                      "failed links partition the cluster: " + unreachable);
  }

  // Rebuild each chip's MMIO intervals: contiguous Supernode runs sharing an
  // egress port merge into one base/limit pair, exactly as in build().
  const std::uint64_t sn_bytes =
      static_cast<std::uint64_t>(k) * config_.dram_per_chip;
  for (int c = 0; c < n; ++c) {
    ChipPlan& cp = degraded.chips_[static_cast<std::size_t>(c)];
    cp.mmio.clear();
    struct Run {
      int first, last, port;
    };
    std::vector<Run> runs;
    for (int t = 0; t < num_sn; ++t) {
      if (t == cp.supernode) continue;
      const int port = egress[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
      if (!runs.empty() && runs.back().last == t - 1 && runs.back().port == port) {
        runs.back().last = t;
      } else {
        runs.push_back(Run{t, t, port});
      }
    }
    for (const Run& r : runs) {
      cp.mmio.push_back(MmioPlan{
          AddrRange{PhysAddr{config_.global_base +
                             static_cast<std::uint64_t>(r.first) * sn_bytes},
                    static_cast<std::uint64_t>(r.last - r.first + 1) * sn_bytes},
          r.port});
    }
    const int budget = kMmioRegisterBudget - (cp.is_bsp ? 1 : 0);
    if (static_cast<int>(cp.mmio.size()) > budget) {
      return make_error(
          ErrorCode::kResourceExhausted,
          strprintf("degraded routing on chip %d needs %d MMIO intervals but only "
                    "%d register pairs are available",
                    c, static_cast<int>(cp.mmio.size()), budget));
    }
  }
  return degraded;
}

Result<int> ClusterPlan::external_hops(int from_supernode, int to_supernode) const {
  if (from_supernode == to_supernode) return 0;
  const std::size_t from_chip =
      static_cast<std::size_t>(supernodes_.at(static_cast<std::size_t>(from_supernode)).chips[0]);
  const PhysAddr target =
      supernodes_.at(static_cast<std::size_t>(to_supernode)).range.base;
  auto route = trace_route(static_cast<int>(from_chip), target);
  if (!route.ok()) return route.error();
  // Count external crossings: consecutive chips in different Supernodes.
  int hops = 0;
  for (std::size_t i = 1; i < route.value().size(); ++i) {
    const int a = chips_[static_cast<std::size_t>(route.value()[i - 1])].supernode;
    const int b = chips_[static_cast<std::size_t>(route.value()[i])].supernode;
    if (a != b) ++hops;
  }
  return hops;
}

}  // namespace tcc::topology

#include "topology/plan.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/strings.hpp"

namespace tcc::topology {

namespace {

constexpr int kPortsPerChip = 4;  // Opteron: four HT links (§III)
constexpr int kMmioRegisterBudget = 8;
constexpr int kDramRegisterBudget = 8;
// NodeID 7 is the pre-enumeration "unassigned" sentinel (§IV.B); pseudo
// NodeIDs for spill routes stay below it.
constexpr int kMaxRouteAlias = 7;

/// One grid dimension of the shape. Dimension d owns the Direction pair
/// (2d, 2d+1) = (negative, positive); routing settles the HIGHEST dimension
/// first (Z, then Y, then X), which with the row-major Supernode layout
/// (index = x + nx*(y + ny*z)) keeps each direction's target set a small
/// number of contiguous index runs.
struct Dim {
  int size = 1;
  bool wrap = false;
};

struct Dims {
  std::array<Dim, 3> d{};
  int count = 0;
};

Dims dims_of(const ClusterConfig& cfg) {
  Dims out;
  switch (cfg.shape) {
    case ClusterShape::kCable:
      out.d[0] = Dim{2, false};
      out.count = 1;
      break;
    case ClusterShape::kChain:
      out.d[0] = Dim{cfg.nx, false};
      out.count = 1;
      break;
    case ClusterShape::kRing:
      out.d[0] = Dim{cfg.nx, true};
      out.count = 1;
      break;
    case ClusterShape::kMesh2D:
      out.d[0] = Dim{cfg.nx, false};
      out.d[1] = Dim{cfg.ny, false};
      out.count = 2;
      break;
    case ClusterShape::kTorus2D:
      out.d[0] = Dim{cfg.nx, true};
      out.d[1] = Dim{cfg.ny, true};
      out.count = 2;
      break;
    case ClusterShape::kTorus3D:
      out.d[0] = Dim{cfg.nx, true};
      out.d[1] = Dim{cfg.ny, true};
      out.d[2] = Dim{cfg.nz, true};
      out.count = 3;
      break;
  }
  return out;
}

std::array<int, 3> coords_of(const Dims& dims, int s) {
  std::array<int, 3> c{0, 0, 0};
  for (int d = 0; d < dims.count; ++d) {
    c[static_cast<std::size_t>(d)] = s % dims.d[static_cast<std::size_t>(d)].size;
    s /= dims.d[static_cast<std::size_t>(d)].size;
  }
  return c;
}

int index_of(const Dims& dims, std::array<int, 3> c) {
  int s = 0;
  for (int d = dims.count - 1; d >= 0; --d) {
    s = s * dims.d[static_cast<std::size_t>(d)].size + c[static_cast<std::size_t>(d)];
  }
  return s;
}

constexpr Direction negative_dir(int dim) { return static_cast<Direction>(2 * dim); }
constexpr Direction positive_dir(int dim) { return static_cast<Direction>(2 * dim + 1); }

/// Minimal direction along dimension `dim` from coordinate `from` to `to`,
/// or nullopt when the coordinates already agree. On a wrapped dimension the
/// shorter way around wins, ties towards the positive direction; every hop
/// taken this way strictly decreases the remaining cyclic distance, which is
/// the loop-freedom argument for both the dimension-ordered tables and the
/// adaptive escapes.
std::optional<Direction> dim_direction(const Dims& dims, int dim, int from, int to) {
  if (from == to) return std::nullopt;
  const Dim& d = dims.d[static_cast<std::size_t>(dim)];
  if (!d.wrap) {
    return to < from ? negative_dir(dim) : positive_dir(dim);
  }
  const int down = ((to - from) % d.size + d.size) % d.size;
  const int up = d.size - down;
  return down <= up ? positive_dir(dim) : negative_dir(dim);
}

/// Directions a Supernode at position `s` needs external ports for, in
/// dimension order (negative before positive, X before Y before Z).
std::vector<Direction> needed_directions(const ClusterConfig& cfg, int s) {
  std::vector<Direction> dirs;
  if (cfg.shape == ClusterShape::kCable) {
    dirs.push_back(s == 0 ? Direction::kEast : Direction::kWest);
    return dirs;
  }
  const Dims dims = dims_of(cfg);
  const auto c = coords_of(dims, s);
  for (int d = 0; d < dims.count; ++d) {
    const Dim& dd = dims.d[static_cast<std::size_t>(d)];
    if (dd.size <= 1) continue;
    if (dd.wrap) {
      dirs.push_back(negative_dir(d));
      dirs.push_back(positive_dir(d));
    } else {
      if (c[static_cast<std::size_t>(d)] > 0) dirs.push_back(negative_dir(d));
      if (c[static_cast<std::size_t>(d)] < dd.size - 1) dirs.push_back(positive_dir(d));
    }
  }
  return dirs;
}

/// SplitMix64 finalizer: spreads a structured key over the full 64-bit space
/// so per-wire fault streams are decorrelated even for adjacent wire indices.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// For Supernode `s`, the egress direction for traffic to Supernode `t`:
/// dimension order, highest (outermost) dimension first.
Direction direction_for(const ClusterConfig& cfg, int s, int t) {
  if (cfg.shape == ClusterShape::kCable) {
    return t < s ? Direction::kWest : Direction::kEast;
  }
  const Dims dims = dims_of(cfg);
  const auto cs = coords_of(dims, s);
  const auto ct = coords_of(dims, t);
  for (int d = dims.count - 1; d >= 0; --d) {
    if (auto dir = dim_direction(dims, d, cs[static_cast<std::size_t>(d)],
                                 ct[static_cast<std::size_t>(d)])) {
      return *dir;
    }
  }
  return Direction::kEast;  // unreachable: t == s
}

/// One resolved routed interval on a specific chip.
struct ChipSegment {
  AddrRange bytes;
  int port = -1;
};

/// Distribute a chip's remote intervals across its MMIO base/limit pairs,
/// spilling overflow into spare DRAM base/limit pairs (§IV.C gives both
/// register files the same base/limit shape; a DRAM pair whose dst_node
/// aliases an egress port routes exactly like an MMIO pair, because every
/// hop re-looks the address up in the receiving chip's own tables).
///
/// Shared by build() and route_around() so healthy and degraded plans obey
/// the same register budgets.
Status assign_chip_ranges(ChipPlan& cp, const std::vector<ChipSegment>& segs, int k) {
  cp.mmio.clear();
  cp.dram_routes.clear();
  // Alias slots [k, 7) belong exclusively to spill routes; reset them so a
  // route_around recomputation starts from a clean file.
  for (int a = k; a < kMaxRouteAlias; ++a) {
    cp.route_to_member[static_cast<std::size_t>(a)] = ChipPlan::kSelfRoute;
  }

  // The BSP chip spends one MMIO register pair on the boot-ROM window; every
  // chip spends one DRAM pair on its own window and one per Supernode peer.
  const int mmio_budget = kMmioRegisterBudget - (cp.is_bsp ? 1 : 0);
  const int dram_budget = kDramRegisterBudget - k;
  const int total = static_cast<int>(segs.size());
  if (total <= mmio_budget) {
    for (const ChipSegment& seg : segs) cp.mmio.push_back(MmioPlan{seg.bytes, seg.port});
    return {};
  }
  const int spill_count = total - mmio_budget;
  if (spill_count > dram_budget) {
    return make_error(
        ErrorCode::kResourceExhausted,
        strprintf("chip %d needs %d routed intervals, but only %d MMIO base/limit "
                  "pairs%s and %d spare DRAM pairs are available",
                  cp.chip, total, mmio_budget,
                  cp.is_bsp ? " (one is the BSP's ROM window)" : "", dram_budget));
  }

  // Pick the spill set: prefer intervals whose egress is an internal
  // coherent port — those reuse a member NodeID as the routes[] alias and
  // cost no pseudo-NodeID — then smaller intervals first.
  std::vector<int> order(segs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  auto spill_key = [&](int i) {
    const ChipSegment& seg = segs[static_cast<std::size_t>(i)];
    const bool internal = ((cp.coherent_ports >> seg.port) & 1u) != 0;
    return std::make_tuple(internal ? 0 : 1, seg.bytes.size, i);
  };
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return spill_key(a) < spill_key(b); });
  std::vector<bool> spilled(segs.size(), false);
  for (int i = 0; i < spill_count; ++i) spilled[static_cast<std::size_t>(order[i])] = true;

  for (std::size_t i = 0; i < segs.size(); ++i) {
    const ChipSegment& seg = segs[i];
    if (!spilled[i]) {
      cp.mmio.push_back(MmioPlan{seg.bytes, seg.port});
      continue;
    }
    // Find a routes[] alias whose request link is the segment's egress: a
    // real member first, then an already-allocated pseudo-NodeID, then a
    // fresh pseudo-NodeID.
    int alias = -1;
    for (int m = 0; m < kMaxRouteAlias; ++m) {
      if (m == cp.node_id) continue;
      if (cp.route_to_member[static_cast<std::size_t>(m)] == seg.port) {
        alias = m;
        break;
      }
    }
    if (alias < 0) {
      for (int a = k; a < kMaxRouteAlias; ++a) {
        if (cp.route_to_member[static_cast<std::size_t>(a)] == ChipPlan::kSelfRoute) {
          alias = a;
          cp.route_to_member[static_cast<std::size_t>(a)] = seg.port;
          break;
        }
      }
    }
    if (alias < 0) {
      return make_error(ErrorCode::kResourceExhausted,
                        strprintf("chip %d: no free pseudo-NodeID for a spilled "
                                  "interval (all %d route entries in use)",
                                  cp.chip, kMaxRouteAlias));
    }
    cp.dram_routes.push_back(ChipPlan::DramRoute{seg.bytes, alias, seg.port});
  }
  return {};
}

}  // namespace

const char* to_string(ClusterShape s) {
  switch (s) {
    case ClusterShape::kCable: return "cable";
    case ClusterShape::kChain: return "chain";
    case ClusterShape::kRing: return "ring";
    case ClusterShape::kMesh2D: return "mesh2d";
    case ClusterShape::kTorus2D: return "torus2d";
    case ClusterShape::kTorus3D: return "torus3d";
  }
  return "?";
}

Result<ClusterShape> shape_from_string(const std::string& name) {
  for (ClusterShape s : {ClusterShape::kCable, ClusterShape::kChain, ClusterShape::kRing,
                         ClusterShape::kMesh2D, ClusterShape::kTorus2D,
                         ClusterShape::kTorus3D}) {
    if (name == to_string(s)) return s;
  }
  return make_error(ErrorCode::kInvalidArgument,
                    strprintf("unknown cluster shape '%s'", name.c_str()));
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::kWest: return "west";
    case Direction::kEast: return "east";
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
    case Direction::kUp: return "up";
    case Direction::kDown: return "down";
  }
  return "?";
}

Result<ClusterPlan> ClusterPlan::build(const ClusterConfig& config) {
  // ---- validate -----------------------------------------------------------
  if (config.supernode_size != 1 && config.supernode_size != 2 &&
      config.supernode_size != 4) {
    return make_error(ErrorCode::kInvalidArgument,
                      "supernode_size must be 1, 2 or 4");
  }
  if (config.nx < 1 || config.ny < 1 || config.nz < 1) {
    return make_error(ErrorCode::kInvalidArgument, "cluster dimensions must be >= 1");
  }
  if (config.shape == ClusterShape::kCable && config.nx != 2) {
    return make_error(ErrorCode::kInvalidArgument, "a cable cluster has exactly 2 nodes");
  }
  if (!config.is_2d() && !config.is_3d() && config.ny != 1) {
    return make_error(ErrorCode::kInvalidArgument,
                      "ny > 1 requires a 2-D shape (mesh or torus)");
  }
  if (!config.is_3d() && config.nz != 1) {
    return make_error(ErrorCode::kInvalidArgument, "nz > 1 requires the torus3d shape");
  }
  if (config.num_supernodes() < 2) {
    return make_error(ErrorCode::kInvalidArgument, "a cluster needs at least 2 Supernodes");
  }
  {
    const Dims dims = dims_of(config);
    int wide_dims = 0;
    for (int d = 0; d < dims.count; ++d) {
      if (dims.d[static_cast<std::size_t>(d)].size > 1) ++wide_dims;
    }
    if (wide_dims >= 2 && config.supernode_size < 2) {
      return make_error(
          ErrorCode::kConfigConflict,
          "a 2-D mesh/torus needs supernode_size >= 2: one Opteron has four HT links, "
          "and four mesh directions plus the southbridge do not fit (this is why "
          "§IV.E introduces Supernodes)");
    }
    if (wide_dims >= 3 && config.supernode_size < 4) {
      return make_error(
          ErrorCode::kConfigConflict,
          "a 3-D torus needs supernode_size == 4: six directions plus the "
          "southbridge need seven free HT ports, and smaller Supernodes only "
          "have five");
    }
  }
  if (config.dram_per_chip < 1_MiB || config.dram_per_chip % 4096 != 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "dram_per_chip must be >= 1 MiB and 4 KiB aligned");
  }
  if (config.cable_links < 1 || config.cable_links > 3) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cable_links must be 1..3 (the 4th port is the southbridge)");
  }
  if (config.cable_links > 1 && config.shape != ClusterShape::kCable) {
    return make_error(ErrorCode::kInvalidArgument,
                      "link aggregation is only defined for the cable shape");
  }

  ClusterPlan plan;
  plan.config_ = config;

  const int k = config.supernode_size;
  const int num_sn = config.num_supernodes();
  const Dims dims = dims_of(config);
  const std::uint64_t sn_bytes = static_cast<std::uint64_t>(k) * config.dram_per_chip;

  // ---- chips, Supernodes, internal wiring --------------------------------
  std::vector<int> free_port(static_cast<std::size_t>(config.num_chips()), 0);
  auto alloc_port = [&](int chip) -> Result<int> {
    if (free_port[static_cast<std::size_t>(chip)] >= kPortsPerChip) {
      return make_error(ErrorCode::kResourceExhausted,
                        strprintf("chip %d has no free HT port", chip));
    }
    return free_port[static_cast<std::size_t>(chip)]++;
  };

  for (int s = 0; s < num_sn; ++s) {
    SupernodePlan sn;
    sn.index = s;
    sn.range = AddrRange{PhysAddr{config.global_base + static_cast<std::uint64_t>(s) * sn_bytes},
                         sn_bytes};
    for (int m = 0; m < k; ++m) {
      const int chip = s * k + m;
      sn.chips.push_back(chip);
      ChipPlan cp;
      cp.chip = chip;
      cp.supernode = s;
      cp.member = m;
      cp.node_id = m;   // coherent NodeID within the Supernode
      cp.is_bsp = (m == 0);
      cp.dram = AddrRange{
          PhysAddr{config.global_base + static_cast<std::uint64_t>(chip) * config.dram_per_chip},
          config.dram_per_chip};
      plan.chips_.push_back(std::move(cp));
    }

    // Southbridge on the BSP member, always the first port.
    {
      auto p = alloc_port(sn.chips[0]);
      if (!p.ok()) return p.error();
      plan.chips_[static_cast<std::size_t>(sn.chips[0])].southbridge_port = p.value();
    }

    // Internal coherent links: k=2 one link, k=4 a ring.
    auto wire_internal = [&](int ma, int mb) -> Status {
      const int ca = sn.chips[static_cast<std::size_t>(ma)];
      const int cb = sn.chips[static_cast<std::size_t>(mb)];
      auto pa = alloc_port(ca);
      if (!pa.ok()) return pa.error();
      auto pb = alloc_port(cb);
      if (!pb.ok()) return pb.error();
      plan.wires_.push_back(WireSpec{PortRef{ca, pa.value()}, PortRef{cb, pb.value()},
                                     /*tccluster=*/false, config.internal_medium});
      plan.chips_[static_cast<std::size_t>(ca)].coherent_ports |= 1u << pa.value();
      plan.chips_[static_cast<std::size_t>(cb)].coherent_ports |= 1u << pb.value();
      plan.chips_[static_cast<std::size_t>(ca)].route_to_member[static_cast<std::size_t>(mb)] =
          pa.value();
      plan.chips_[static_cast<std::size_t>(cb)].route_to_member[static_cast<std::size_t>(ma)] =
          pb.value();
      return {};
    };
    if (k == 2) {
      if (Status st = wire_internal(0, 1); !st.ok()) return st.error();
    } else if (k == 4) {
      for (int m = 0; m < 4; ++m) {
        if (Status st = wire_internal(m, (m + 1) % 4); !st.ok()) return st.error();
      }
      // Two-hop members route via the clockwise neighbour.
      for (int m = 0; m < 4; ++m) {
        ChipPlan& cp = plan.chips_[static_cast<std::size_t>(sn.chips[static_cast<std::size_t>(m)])];
        const int two_away = (m + 2) % 4;
        cp.route_to_member[static_cast<std::size_t>(two_away)] =
            cp.route_to_member[static_cast<std::size_t>((m + 1) % 4)];
      }
    }

    // Allocate one external (TCCluster) port on the member with the most
    // free links.
    auto alloc_external = [&](const char* what) -> Result<PortRef> {
      int best = -1;
      for (int m = 0; m < k; ++m) {
        const int chip = sn.chips[static_cast<std::size_t>(m)];
        if (free_port[static_cast<std::size_t>(chip)] >= kPortsPerChip) continue;
        if (best < 0 || free_port[static_cast<std::size_t>(chip)] <
                            free_port[static_cast<std::size_t>(best)]) {
          best = chip;
        }
      }
      if (best < 0) {
        return make_error(ErrorCode::kResourceExhausted,
                          strprintf("Supernode %d cannot host a %s port: all HT "
                                    "links in use",
                                    s, what));
      }
      auto p = alloc_port(best);
      if (!p.ok()) return p.error();
      plan.chips_[static_cast<std::size_t>(best)].tccluster_ports |= 1u << p.value();
      return PortRef{best, p.value()};
    };

    if (config.shape == ClusterShape::kCable) {
      // Cable link aggregation (§V): cable_links parallel ports.
      for (int l = 0; l < config.cable_links; ++l) {
        auto p = alloc_external("cable");
        if (!p.ok()) return p.error();
        sn.cable_ports.push_back(p.value());
      }
      sn.external[static_cast<std::size_t>(s == 0 ? Direction::kEast : Direction::kWest)] =
          sn.cable_ports[0];
    } else {
      for (Direction d : needed_directions(config, s)) {
        auto p = alloc_external(to_string(d));
        if (!p.ok()) return p.error();
        sn.external[static_cast<std::size_t>(d)] = p.value();
      }
    }

    plan.supernodes_.push_back(std::move(sn));
  }

  // ---- external wiring -----------------------------------------------------
  // Generic over dimensions: every Supernode wires its positive direction in
  // each dimension to the neighbour's negative port. On a wrapped dimension
  // of size 2 this produces two parallel wires per pair (one per direction),
  // matching a real double-linked ring.
  auto ext = [&](int s, Direction d) -> const std::optional<PortRef>& {
    return plan.supernodes_[static_cast<std::size_t>(s)].external[static_cast<std::size_t>(d)];
  };
  auto wire_external = [&](int sa, Direction da, int sb, Direction db) -> Status {
    const auto& pa = ext(sa, da);
    const auto& pb = ext(sb, db);
    if (!pa || !pb) {
      return make_error(ErrorCode::kConfigConflict, "missing external port for wiring");
    }
    plan.wires_.push_back(WireSpec{*pa, *pb, /*tccluster=*/true, config.external_medium});
    return {};
  };
  if (config.shape == ClusterShape::kCable) {
    for (int l = 0; l < config.cable_links; ++l) {
      plan.wires_.push_back(WireSpec{plan.supernodes_[0].cable_ports[static_cast<std::size_t>(l)],
                                     plan.supernodes_[1].cable_ports[static_cast<std::size_t>(l)],
                                     /*tccluster=*/true, config.external_medium});
    }
  } else {
    for (int s = 0; s < num_sn; ++s) {
      const auto c = coords_of(dims, s);
      for (int d = 0; d < dims.count; ++d) {
        const Dim& dd = dims.d[static_cast<std::size_t>(d)];
        if (dd.size <= 1) continue;
        if (!dd.wrap && c[static_cast<std::size_t>(d)] + 1 >= dd.size) continue;
        auto cn = c;
        cn[static_cast<std::size_t>(d)] =
            (c[static_cast<std::size_t>(d)] + 1) % dd.size;
        const int t = index_of(dims, cn);
        if (Status st = wire_external(s, positive_dir(d), t, negative_dir(d));
            !st.ok()) {
          return st.error();
        }
      }
    }
  }

  // ---- per-wire fault seeds ------------------------------------------------
  // Key on the wire's physical identity (endpoints), not just its index, so
  // the stream survives unrelated wires being added to the list.
  for (std::size_t i = 0; i < plan.wires_.size(); ++i) {
    WireSpec& w = plan.wires_[i];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.a.chip)) << 40) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.a.port)) << 32) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.b.chip)) << 8) ^
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.b.port)) ^ (i << 16);
    w.medium.fault_seed = mix64(mix64(config.seed) ^ key);
  }

  // ---- per-chip address maps ----------------------------------------------
  for (int s = 0; s < num_sn; ++s) {
    // Group remote Supernodes into contiguous runs sharing one direction.
    // Dimension-ordered direction choice keeps this small: each wrapped
    // dimension contributes at most 3 linear runs, so a 3-D torus needs at
    // most 9 — anything past the MMIO register file spills to DRAM pairs.
    struct Run {
      int first, last;  // inclusive Supernode range
      Direction dir;
    };
    std::vector<Run> runs;
    for (int t = 0; t < num_sn; ++t) {
      if (t == s) continue;
      const Direction d = direction_for(config, s, t);
      if (!runs.empty() && runs.back().last == t - 1 && runs.back().dir == d) {
        runs.back().last = t;
      } else {
        runs.push_back(Run{t, t, d});
      }
    }
    const SupernodePlan& sn = plan.supernodes_[static_cast<std::size_t>(s)];
    const auto cs = coords_of(dims, s);

    // Resolve runs to (byte range, external port) segments. On a cable the
    // single remote run is striped across the aggregated links (§V).
    struct Segment {
      AddrRange bytes;
      PortRef port;
    };
    // Adaptive escape hints, collected separately at SUB-run granularity:
    // an escape hop must be minimal for every target it covers, or a packet
    // could be pushed off its shortest path and livelock. At whole-run
    // granularity such a direction rarely exists — a Z-routed run spans
    // targets whose minimal Y (or X) direction flips sign partway through —
    // so each run is split wherever the per-target minimal alternate
    // changes (the row-major layout keeps those groups contiguous). Each
    // sub-run's escape hop still strictly decreases the remaining torus
    // distance for every covered target, preserving the no-livelock
    // argument.
    struct Escape {
      AddrRange bytes;
      PortRef primary;
      PortRef alt;
    };
    std::vector<Segment> segments;
    std::vector<Escape> escapes;
    for (const Run& run : runs) {
      const AddrRange bytes{
          PhysAddr{config.global_base + static_cast<std::uint64_t>(run.first) * sn_bytes},
          static_cast<std::uint64_t>(run.last - run.first + 1) * sn_bytes};
      if (config.shape == ClusterShape::kCable && config.cable_links > 1) {
        const auto stripes = static_cast<std::uint64_t>(config.cable_links);
        const std::uint64_t stripe = bytes.size / stripes / 4096 * 4096;
        std::uint64_t off = 0;
        for (std::uint64_t l = 0; l < stripes; ++l) {
          const std::uint64_t len = l + 1 == stripes ? bytes.size - off : stripe;
          segments.push_back(Segment{AddrRange{bytes.base + off, len},
                                     sn.cable_ports[static_cast<std::size_t>(l)]});
          off += len;
        }
      } else if (config.shape == ClusterShape::kCable) {
        segments.push_back(Segment{bytes, sn.cable_ports[0]});
      } else {
        const auto& port = sn.external[static_cast<std::size_t>(run.dir)];
        TCC_ASSERT(port.has_value(), "direction in use but no external port planned");
        segments.push_back(Segment{bytes, *port});
        if (config.adaptive_routing) {
          const int primary_dim = static_cast<int>(run.dir) / 2;
          // Minimal alternate direction for one target: the outermost
          // non-primary dimension still in disagreement.
          auto alt_for = [&](int t) -> std::optional<Direction> {
            const auto ct = coords_of(dims, t);
            for (int d = dims.count - 1; d >= 0; --d) {
              if (d == primary_dim) continue;
              if (auto dir = dim_direction(dims, d, cs[static_cast<std::size_t>(d)],
                                           ct[static_cast<std::size_t>(d)])) {
                if (sn.external[static_cast<std::size_t>(*dir)]) return dir;
              }
            }
            return std::nullopt;
          };
          int sub_first = run.first;
          std::optional<Direction> sub_dir = alt_for(run.first);
          auto flush = [&](int sub_last) {
            if (!sub_dir) return;
            escapes.push_back(Escape{
                AddrRange{PhysAddr{config.global_base +
                                   static_cast<std::uint64_t>(sub_first) * sn_bytes},
                          static_cast<std::uint64_t>(sub_last - sub_first + 1) * sn_bytes},
                *port, *sn.external[static_cast<std::size_t>(*sub_dir)]});
          };
          for (int t = run.first + 1; t <= run.last; ++t) {
            const auto dir = alt_for(t);
            if (dir != sub_dir) {
              flush(t - 1);
              sub_first = t;
              sub_dir = dir;
            }
          }
          flush(run.last);
        }
      }
    }

    for (int m = 0; m < k; ++m) {
      ChipPlan& cp = plan.chips_[static_cast<std::size_t>(sn.chips[static_cast<std::size_t>(m)])];

      // Peer DRAM within the Supernode.
      for (int pm = 0; pm < k; ++pm) {
        if (pm == m) continue;
        const ChipPlan& peer =
            plan.chips_[static_cast<std::size_t>(sn.chips[static_cast<std::size_t>(pm)])];
        cp.peer_dram.push_back(ChipPlan::PeerDram{peer.dram, peer.node_id});
      }

      // Egress on the member owning the segment's port, or towards that
      // member over the internal fabric.
      auto resolve = [&](const PortRef& port) {
        if (port.chip == cp.chip) return port.port;
        const int owner_member = plan.chips_[static_cast<std::size_t>(port.chip)].member;
        const int egress = cp.route_to_member[static_cast<std::size_t>(owner_member)];
        TCC_ASSERT(egress >= 0, "no internal route to the port-owning member");
        return egress;
      };
      std::vector<ChipSegment> chip_segments;
      chip_segments.reserve(segments.size());
      for (const Segment& seg : segments) {
        chip_segments.push_back(ChipSegment{seg.bytes, resolve(seg.port)});
      }
      if (Status st = assign_chip_ranges(cp, chip_segments, k); !st.ok()) {
        return st.error();
      }
      for (const Escape& esc : escapes) {
        // Only the chip owning the alternate external port gets the hint:
        // an escape must actually bypass the congested egress over a
        // different wire, not bounce the packet around the local coherent
        // fabric.
        if (esc.alt.chip != cp.chip) continue;
        const int primary = resolve(esc.primary);
        if (esc.alt.port == primary) continue;  // same egress: no diversity
        if (static_cast<int>(cp.adaptive.size()) >= kMmioRegisterBudget) break;
        cp.adaptive.push_back(
            ChipPlan::AdaptiveHint{esc.bytes, primary, esc.alt.port});
      }
    }
  }

  return plan;
}

AddrRange ClusterPlan::global_range() const {
  const std::uint64_t total =
      static_cast<std::uint64_t>(config_.num_chips()) * config_.dram_per_chip;
  return AddrRange{PhysAddr{config_.global_base}, total};
}

Result<int> ClusterPlan::supernode_of(PhysAddr addr) const {
  if (!global_range().contains(addr)) {
    return make_error(ErrorCode::kOutOfRange, "address outside the global space");
  }
  const std::uint64_t sn_bytes =
      static_cast<std::uint64_t>(config_.supernode_size) * config_.dram_per_chip;
  return static_cast<int>((addr.value() - config_.global_base) / sn_bytes);
}

Result<int> ClusterPlan::chip_of(PhysAddr addr) const {
  if (!global_range().contains(addr)) {
    return make_error(ErrorCode::kOutOfRange, "address outside the global space");
  }
  return static_cast<int>((addr.value() - config_.global_base) / config_.dram_per_chip);
}

std::array<int, 3> ClusterPlan::supernode_coords(int supernode) const {
  return coords_of(dims_of(config_), supernode);
}

int ClusterPlan::fault_domain_of(int chip) const {
  TCC_ASSERT(chip >= 0 && chip < static_cast<int>(chips_.size()),
             "fault_domain_of: bad chip index");
  int outer_dim = 0;
  for (int d = 2; d >= 1 && outer_dim == 0; --d) {
    for (std::size_t s = 0; s < supernodes_.size(); ++s) {
      if (supernode_coords(static_cast<int>(s))[static_cast<std::size_t>(d)] != 0) {
        outer_dim = d;
        break;
      }
    }
  }
  const int sn = chips_[static_cast<std::size_t>(chip)].supernode;
  return supernode_coords(sn)[static_cast<std::size_t>(outer_dim)];
}

Result<std::optional<int>> ClusterPlan::next_hop(int chip, PhysAddr addr) const {
  if (chip < 0 || chip >= static_cast<int>(chips_.size())) {
    return make_error(ErrorCode::kOutOfRange, "bad chip index");
  }
  const ChipPlan& cp = chips_[static_cast<std::size_t>(chip)];
  if (cp.dram.contains(addr)) return std::optional<int>{};
  for (const auto& peer : cp.peer_dram) {
    if (peer.range.contains(addr)) {
      const int port = cp.route_to_member[static_cast<std::size_t>(peer.node_id)];
      if (port < 0) {
        return make_error(ErrorCode::kConfigConflict, "no route to peer member");
      }
      return std::optional<int>{port};
    }
  }
  for (const auto& dr : cp.dram_routes) {
    if (dr.range.contains(addr)) return std::optional<int>{dr.port};
  }
  for (const auto& m : cp.mmio) {
    if (m.range.contains(addr)) return std::optional<int>{m.port};
  }
  if (!cp.unreachable_supernodes.empty()) {
    if (auto sn = supernode_of(addr); sn.ok()) {
      if (std::find(cp.unreachable_supernodes.begin(), cp.unreachable_supernodes.end(),
                    sn.value()) != cp.unreachable_supernodes.end()) {
        return make_error(ErrorCode::kUnavailable,
                          strprintf("chip %d: Supernode %d is unreachable after "
                                    "route-around",
                                    chip, sn.value()));
      }
    }
  }
  return make_error(ErrorCode::kOutOfRange,
                    strprintf("chip %d: address 0x%llx matches no range", chip,
                              static_cast<unsigned long long>(addr.value())));
}

Result<std::vector<int>> ClusterPlan::trace_route(int chip, PhysAddr addr,
                                                  int max_hops) const {
  // Build the port->peer map once per call; plans are small.
  std::map<std::pair<int, int>, PortRef> peer;
  for (const WireSpec& w : wires_) {
    peer[{w.a.chip, w.a.port}] = w.b;
    peer[{w.b.chip, w.b.port}] = w.a;
  }
  std::vector<int> visited{chip};
  int cur = chip;
  for (int hop = 0; hop < max_hops; ++hop) {
    auto nh = next_hop(cur, addr);
    if (!nh.ok()) return nh.error();
    if (!nh.value().has_value()) return visited;  // sunk
    auto it = peer.find({cur, *nh.value()});
    if (it == peer.end()) {
      return make_error(ErrorCode::kConfigConflict,
                        strprintf("chip %d routes out port %d which is not wired", cur,
                                  *nh.value()));
    }
    cur = it->second.chip;
    visited.push_back(cur);
  }
  return make_error(ErrorCode::kConfigConflict, "routing loop: exceeded max hops");
}

Result<ClusterPlan> ClusterPlan::route_around(
    const std::vector<std::size_t>& failed_wires, RouteAroundPolicy policy) const {
  constexpr int kInf = 1 << 30;
  const int n = static_cast<int>(chips_.size());
  const int num_sn = static_cast<int>(supernodes_.size());
  const int k = config_.supernode_size;
  const bool best_effort = policy == RouteAroundPolicy::kBestEffort;

  std::vector<bool> dead(wires_.size(), false);
  for (std::size_t i : failed_wires) {
    if (i >= wires_.size()) {
      return make_error(ErrorCode::kOutOfRange,
                        strprintf("failed wire index %zu out of range", i));
    }
    dead[i] = true;
  }

  // Surviving adjacency: chip x port -> peer chip. Southbridge ports carry
  // no plan wire and stay -1.
  struct Edge {
    int peer = -1;
    bool internal = false;
  };
  std::vector<std::array<Edge, kPortsPerChip>> adj(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    if (dead[i]) continue;
    const WireSpec& w = wires_[i];
    adj[static_cast<std::size_t>(w.a.chip)][static_cast<std::size_t>(w.a.port)] =
        Edge{w.b.chip, !w.tccluster};
    adj[static_cast<std::size_t>(w.b.chip)][static_cast<std::size_t>(w.b.port)] =
        Edge{w.a.chip, !w.tccluster};
  }

  // BFS distance from `target` over surviving intra-Supernode coherent
  // links (external routing is planned at Supernode granularity below).
  auto bfs = [&](int target) {
    std::vector<int> dist(static_cast<std::size_t>(n), kInf);
    std::deque<int> q{target};
    dist[static_cast<std::size_t>(target)] = 0;
    while (!q.empty()) {
      const int c = q.front();
      q.pop_front();
      for (int p = 0; p < kPortsPerChip; ++p) {
        const Edge& e = adj[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)];
        if (e.peer < 0 || !e.internal) continue;
        if (dist[static_cast<std::size_t>(e.peer)] != kInf) continue;
        dist[static_cast<std::size_t>(e.peer)] = dist[static_cast<std::size_t>(c)] + 1;
        q.push_back(e.peer);
      }
    }
    return dist;
  };
  // Lowest-numbered coherent port on `c` one step closer to the BFS target.
  // Every chip routing strictly downhill on the same distance field is what
  // makes the degraded tables loop-free.
  auto downhill_port = [&](const std::vector<int>& dist, int c) {
    for (int p = 0; p < kPortsPerChip; ++p) {
      const Edge& e = adj[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)];
      if (e.peer < 0 || !e.internal) continue;
      if (dist[static_cast<std::size_t>(e.peer)] ==
          dist[static_cast<std::size_t>(c)] - 1) {
        return p;
      }
    }
    return -1;
  };

  ClusterPlan degraded = *this;
  for (ChipPlan& cp : degraded.chips_) {
    cp.unreachable_supernodes.clear();
    // Adaptive escape hints encode alternate minimal paths of the HEALTHY
    // fabric; after a reroute their minimality argument no longer holds, so
    // degraded plans run pure dimension-order detours.
    cp.adaptive.clear();
  }
  std::string unreachable;
  auto note_unreachable = [&](const std::string& what) {
    if (!unreachable.empty()) unreachable += "; ";
    unreachable += what;
  };

  // Intra-Supernode coherent routes (a failed internal wire on a 4-ring has
  // a detour the other way around; on a pair it partitions the Supernode).
  // A split coherent fabric is fatal even in best-effort mode: the Supernode
  // is no longer a machine, not merely an unreachable network destination.
  for (const SupernodePlan& sn : supernodes_) {
    for (int m = 0; m < k; ++m) {
      const int target = sn.chips[static_cast<std::size_t>(m)];
      const auto dist = bfs(target);
      for (int m2 = 0; m2 < k; ++m2) {
        if (m2 == m) continue;
        const int c = sn.chips[static_cast<std::size_t>(m2)];
        ChipPlan& cp = degraded.chips_[static_cast<std::size_t>(c)];
        if (dist[static_cast<std::size_t>(c)] == kInf) {
          note_unreachable(strprintf("chip %d cannot reach member %d of Supernode %d",
                                     c, m, sn.index));
          continue;
        }
        cp.route_to_member[static_cast<std::size_t>(m)] = downhill_port(dist, c);
      }
    }
  }
  if (best_effort && !unreachable.empty()) {
    return make_error(ErrorCode::kUnavailable,
                      "failed links partition the cluster: " + unreachable);
  }

  // Remote-Supernode egress, planned at Supernode granularity. A BFS over
  // the surviving external topology picks one egress wire per
  // (source, target) Supernode pair; among the steps one Supernode closer
  // to the target, the dimension-order preference wins (highest dimension
  // first, positive before negative). On an intact fabric that reproduces
  // build()'s dimension-ordered choice exactly, and after a cut it keeps
  // target -> egress piecewise-constant over contiguous index runs —
  // per-chip BFS tie-breaking here used to fragment a plane cut's
  // survivors past their base/limit register budgets.
  struct SnEdge {
    int to = -1;
    PortRef port;  ///< local wire endpoint
    int rank = 0;  ///< dimension-order preference, lower wins
  };
  std::vector<std::vector<SnEdge>> sn_adj(static_cast<std::size_t>(num_sn));
  {
    const Dims dims = dims_of(config_);
    auto step_rank = [&](int s, int nbr) {
      const auto cs = coords_of(dims, s);
      const auto cn = coords_of(dims, nbr);
      for (int d = dims.count - 1; d >= 0; --d) {
        const auto dd = static_cast<std::size_t>(d);
        if (cs[dd] == cn[dd]) continue;
        const bool positive = (cs[dd] + 1) % dims.d[dd].size == cn[dd];
        return 2 * (dims.count - 1 - d) + (positive ? 0 : 1);
      }
      return 2 * dims.count;  // parallel cable link: no grid direction
    };
    for (std::size_t i = 0; i < wires_.size(); ++i) {
      if (dead[i] || !wires_[i].tccluster) continue;
      const WireSpec& w = wires_[i];
      const int sa = chips_[static_cast<std::size_t>(w.a.chip)].supernode;
      const int sb = chips_[static_cast<std::size_t>(w.b.chip)].supernode;
      sn_adj[static_cast<std::size_t>(sa)].push_back(SnEdge{sb, w.a, step_rank(sa, sb)});
      sn_adj[static_cast<std::size_t>(sb)].push_back(SnEdge{sa, w.b, step_rank(sb, sa)});
    }
  }

  std::vector<PortRef> egress(
      static_cast<std::size_t>(num_sn) * static_cast<std::size_t>(num_sn));
  auto egress_at = [&](int t, int s) -> PortRef& {
    return egress[static_cast<std::size_t>(t) * static_cast<std::size_t>(num_sn) +
                  static_cast<std::size_t>(s)];
  };
  std::vector<int> sn_dist(static_cast<std::size_t>(num_sn));
  for (int t = 0; t < num_sn; ++t) {
    std::fill(sn_dist.begin(), sn_dist.end(), kInf);
    std::deque<int> q{t};
    sn_dist[static_cast<std::size_t>(t)] = 0;
    while (!q.empty()) {
      const int s = q.front();
      q.pop_front();
      for (const SnEdge& e : sn_adj[static_cast<std::size_t>(s)]) {
        if (sn_dist[static_cast<std::size_t>(e.to)] != kInf) continue;
        sn_dist[static_cast<std::size_t>(e.to)] =
            sn_dist[static_cast<std::size_t>(s)] + 1;
        q.push_back(e.to);
      }
    }
    for (int s = 0; s < num_sn; ++s) {
      if (s == t) continue;
      if (sn_dist[static_cast<std::size_t>(s)] == kInf) {
        if (best_effort) {
          for (int chip : supernodes_[static_cast<std::size_t>(s)].chips) {
            degraded.chips_[static_cast<std::size_t>(chip)]
                .unreachable_supernodes.push_back(t);
          }
        } else {
          note_unreachable(
              strprintf("Supernode %d cannot reach Supernode %d (partition)", s, t));
        }
        continue;
      }
      const SnEdge* best = nullptr;
      for (const SnEdge& e : sn_adj[static_cast<std::size_t>(s)]) {
        if (sn_dist[static_cast<std::size_t>(e.to)] !=
            sn_dist[static_cast<std::size_t>(s)] - 1) {
          continue;
        }
        if (!best ||
            std::make_tuple(e.rank, e.port.chip, e.port.port) <
                std::make_tuple(best->rank, best->port.chip, best->port.port)) {
          best = &e;
        }
      }
      TCC_ASSERT(best != nullptr, "finite Supernode distance but no downhill step");
      egress_at(t, s) = best->port;
    }
  }
  if (!unreachable.empty()) {
    return make_error(ErrorCode::kUnavailable,
                      "failed links partition the cluster: " + unreachable);
  }

  // Rebuild each chip's routed intervals: contiguous Supernode runs whose
  // egress resolves to the same local port merge into one base/limit pair,
  // exactly as in build(); unreachable Supernodes (best-effort only) are
  // simply left out, so their addresses fall through to next_hop()'s
  // kUnavailable answer.
  const std::uint64_t sn_bytes =
      static_cast<std::uint64_t>(k) * config_.dram_per_chip;
  for (int c = 0; c < n; ++c) {
    ChipPlan& cp = degraded.chips_[static_cast<std::size_t>(c)];
    // The Supernode-level wire endpoint resolves to this chip's own port:
    // the wire's port when this chip owns it, else the (degraded) internal
    // route towards the owning member.
    auto resolve = [&](const PortRef& pr) {
      if (pr.chip == cp.chip) return pr.port;
      const int owner_member = chips_[static_cast<std::size_t>(pr.chip)].member;
      const int p = cp.route_to_member[static_cast<std::size_t>(owner_member)];
      TCC_ASSERT(p >= 0, "no internal route to the port-owning member");
      return p;
    };
    struct Run {
      int first, last, port;
    };
    std::vector<Run> runs;
    for (int t = 0; t < num_sn; ++t) {
      if (t == cp.supernode) continue;
      const PortRef pr = egress_at(t, cp.supernode);
      if (pr.chip < 0) continue;  // unreachable (best-effort): no interval
      const int port = resolve(pr);
      if (!runs.empty() && runs.back().last == t - 1 && runs.back().port == port) {
        runs.back().last = t;
      } else {
        runs.push_back(Run{t, t, port});
      }
    }
    std::vector<ChipSegment> segments;
    segments.reserve(runs.size());
    for (const Run& r : runs) {
      segments.push_back(ChipSegment{
          AddrRange{PhysAddr{config_.global_base +
                             static_cast<std::uint64_t>(r.first) * sn_bytes},
                    static_cast<std::uint64_t>(r.last - r.first + 1) * sn_bytes},
          r.port});
    }
    if (Status st = assign_chip_ranges(cp, segments, k); !st.ok()) {
      return st.error();
    }
  }
  return degraded;
}

Result<int> ClusterPlan::external_hops(int from_supernode, int to_supernode) const {
  if (from_supernode == to_supernode) return 0;
  const std::size_t from_chip =
      static_cast<std::size_t>(supernodes_.at(static_cast<std::size_t>(from_supernode)).chips[0]);
  const PhysAddr target =
      supernodes_.at(static_cast<std::size_t>(to_supernode)).range.base;
  auto route = trace_route(static_cast<int>(from_chip), target);
  if (!route.ok()) return route.error();
  // Count external crossings: consecutive chips in different Supernodes.
  int hops = 0;
  for (std::size_t i = 1; i < route.value().size(); ++i) {
    const int a = chips_[static_cast<std::size_t>(route.value()[i - 1])].supernode;
    const int b = chips_[static_cast<std::size_t>(route.value()[i])].supernode;
    if (a != b) ++hops;
  }
  return hops;
}

int ClusterPlan::bisection_wires() const {
  const Dims dims = dims_of(config_);
  int best = 0;
  bool first = true;
  for (int d = 0; d < dims.count; ++d) {
    const Dim& dd = dims.d[static_cast<std::size_t>(d)];
    if (dd.size <= 1) continue;
    // Split the dimension at size/2 and count external wires whose endpoint
    // Supernodes land on opposite sides (wrap wires cross naturally).
    const int half = dd.size / 2;
    int crossing = 0;
    for (const WireSpec& w : wires_) {
      if (!w.tccluster) continue;
      const int sa = chips_[static_cast<std::size_t>(w.a.chip)].supernode;
      const int sb = chips_[static_cast<std::size_t>(w.b.chip)].supernode;
      const int ca = coords_of(dims, sa)[static_cast<std::size_t>(d)];
      const int cb = coords_of(dims, sb)[static_cast<std::size_t>(d)];
      if ((ca < half) != (cb < half)) ++crossing;
    }
    if (first || crossing < best) {
      best = crossing;
      first = false;
    }
  }
  return best;
}

}  // namespace tcc::topology

// Cluster planning: shapes, Supernode composition, the global address map,
// and the contiguous-interval routing tables (§IV.C–§IV.F).
//
// The planner is pure (no simulation dependencies): it turns a ClusterConfig
// into per-chip register programs — DRAM windows, MMIO interval->port
// assignments, coherent NodeIDs and routes, wire lists — that the firmware
// later writes into the simulated chips. Keeping it pure lets the routing
// properties be tested exhaustively on large clusters without simulating
// them.
//
// Routing is dimension-ordered: a packet settles the outermost dimension
// first (Z, then Y, then X), taking the shortest way around each wrapped
// ring with ties broken towards the positive direction. Every hop strictly
// decreases the remaining cyclic distance, which is what makes the interval
// tables loop-free on tori (see docs/ARCHITECTURE.md, "Torus fabric").
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "ht/link.hpp"
#include "ht/link_regs.hpp"

namespace tcc::topology {

/// Cluster shapes supported by the interval-routing solver.
enum class ClusterShape {
  kCable,    // two Supernodes, one external link (the paper's prototype, §V)
  kChain,    // 1-D line
  kRing,     // 1-D ring, shortest-path routing
  kMesh2D,   // 2-D mesh, Y-then-X dimension-order routing
  kTorus2D,  // 2-D torus: mesh + wraparound, shortest path per dimension.
             // Needs up to 8 MMIO intervals per chip (wrapping splits each
             // direction's row/column set into two address runs).
  kTorus3D,  // 3-D torus of Supernodes (nx x ny x nz), Z-then-Y-then-X
             // dimension order. The wrap splits can need up to 9 intervals;
             // overflow spills into spare DRAM base/limit pairs routed via
             // pseudo-NodeIDs (see ChipPlan::dram_routes).
};

[[nodiscard]] const char* to_string(ClusterShape s);

/// Parse a shape name as printed by to_string ("cable", "ring", "torus3d"...).
[[nodiscard]] Result<ClusterShape> shape_from_string(const std::string& name);

/// Logical external port directions on a Supernode. Each dimension d owns
/// the pair (2d, 2d+1) = (negative, positive): X is West/East, Y is
/// North/South, Z is Up/Down.
enum class Direction : std::uint8_t {
  kWest = 0,
  kEast = 1,
  kNorth = 2,
  kSouth = 3,
  kUp = 4,
  kDown = 5,
};
inline constexpr int kNumDirections = 6;

[[nodiscard]] const char* to_string(Direction d);

struct ClusterConfig {
  ClusterShape shape = ClusterShape::kCable;
  int nx = 2;  ///< nodes along X (chain/ring length, mesh width)
  int ny = 1;  ///< mesh height
  int nz = 1;  ///< torus3d depth
  /// Chips per Supernode (1, 2 or 4). A mesh needs >= 2: a single Opteron
  /// has four HT links, and four mesh directions plus the southbridge do
  /// not fit — the very reason §IV.E introduces Supernodes. A 3-D torus
  /// needs 4: six directions plus the southbridge need seven free ports.
  int supernode_size = 1;
  /// Parallel links on a cable cluster (§V: the Tyan board has two HT links
  /// between the sockets "which can be aggregated to a dual link"). The
  /// remote interval is striped across the links at address granularity —
  /// half the remote memory routes out each port. 1..3 (the 4th port is the
  /// southbridge).
  int cable_links = 1;
  std::uint64_t dram_per_chip = 256_MiB;
  std::uint64_t global_base = 4_GiB;  ///< bottom of the contiguous global space
  /// Master seed for the cluster's randomness. build() derives a distinct
  /// fault-stream seed per wire from it, so two links never replay the same
  /// CRC fault sequence, while the whole cluster stays reproducible.
  std::uint64_t seed = 0x7cc;
  ht::LinkFreq link_freq = ht::LinkFreq::kHt800;
  ht::LinkMedium external_medium{.length_inches = 24.0, .coax_cable = true};
  ht::LinkMedium internal_medium{.length_inches = 6.0, .coax_cable = false};
  /// Opt-in adaptive escape routing: the planner additionally emits, per
  /// MMIO interval that has one, an alternate *minimal* egress port valid
  /// for every address in the interval. The northbridge takes the alternate
  /// only when the primary egress queue would block, so escapes stay
  /// livelock-free (every hop still strictly decreases distance).
  bool adaptive_routing = false;

  [[nodiscard]] bool is_2d() const {
    return shape == ClusterShape::kMesh2D || shape == ClusterShape::kTorus2D;
  }
  [[nodiscard]] bool is_3d() const { return shape == ClusterShape::kTorus3D; }
  [[nodiscard]] int num_supernodes() const {
    if (is_3d()) return nx * ny * nz;
    return is_2d() ? nx * ny : nx;
  }
  [[nodiscard]] int num_chips() const { return num_supernodes() * supernode_size; }
};

/// A (chip, port) endpoint in the cluster.
struct PortRef {
  int chip = -1;
  int port = -1;
  constexpr bool operator==(const PortRef&) const = default;
};

/// One physical link to instantiate.
struct WireSpec {
  PortRef a;
  PortRef b;
  bool tccluster = false;  ///< external (forced non-coherent) vs internal coherent
  ht::LinkMedium medium;
};

/// One MMIO base/limit register program: interval -> egress port.
struct MmioPlan {
  AddrRange range;
  int port = -1;
};

/// Everything the firmware must program into one chip.
struct ChipPlan {
  int chip = -1;        ///< global chip index
  int supernode = -1;
  int member = -1;      ///< index within the Supernode
  int node_id = 0;      ///< coherent NodeID within the Supernode (BSP == 0)
  bool is_bsp = false;
  AddrRange dram;       ///< this chip's DRAM window

  std::vector<MmioPlan> mmio;  ///< remote intervals, ordered, disjoint

  /// DRAM ranges of the *other* members of this Supernode (programmed so a
  /// TCCluster packet entering on any member reaches the right DIMMs).
  struct PeerDram {
    AddrRange range;
    int node_id;
  };
  std::vector<PeerDram> peer_dram;

  /// Remote intervals that did not fit in the MMIO register file (a 3-D
  /// torus wrap can need up to 9 intervals against 7 or 8 MMIO pairs).
  /// Each spills into a spare DRAM base/limit pair whose dst_node names an
  /// alias in route_to_member — either a real member whose route already
  /// points at the desired egress, or a pseudo-NodeID in
  /// [supernode_size, 7) allocated just to carry the port. The packet is
  /// re-looked-up by address at every hop, so the alias is purely a local
  /// indirection to an egress port.
  struct DramRoute {
    AddrRange range;
    int node_id = -1;  ///< routes[] alias whose request_link is `port`
    int port = -1;     ///< resolved egress port (for pure next_hop eval)
  };
  std::vector<DramRoute> dram_routes;

  /// Opt-in adaptive escape hints (ClusterConfig::adaptive_routing): an
  /// alternate egress that is minimal for *every* address in `range`.
  struct AdaptiveHint {
    AddrRange range;
    int primary_port = -1;
    int alt_port = -1;
  };
  std::vector<AdaptiveHint> adaptive;

  /// Supernodes this chip cannot reach after a best-effort route_around.
  /// next_hop() answers kUnavailable for their addresses. Empty on healthy
  /// plans and on strict route_around results.
  std::vector<int> unreachable_supernodes;

  /// Coherent routing table: member NodeID -> egress port (kSelfRoute = us).
  /// Entries at [supernode_size, 7) may carry pseudo-NodeID spill routes.
  static constexpr int kSelfRoute = -1;
  std::array<int, 8> route_to_member{kSelfRoute, kSelfRoute, kSelfRoute, kSelfRoute,
                                     kSelfRoute, kSelfRoute, kSelfRoute, kSelfRoute};

  /// Ports carrying TCCluster (external) links, as a bitmask.
  std::uint32_t tccluster_ports = 0;
  /// Ports carrying coherent intra-Supernode links, as a bitmask.
  std::uint32_t coherent_ports = 0;
  /// Port wired to the southbridge, if this chip hosts it (BSP member).
  std::optional<int> southbridge_port;
};

struct SupernodePlan {
  int index = -1;
  std::vector<int> chips;  ///< global chip indices, member order
  AddrRange range;         ///< combined DRAM of all members
  /// External port assignment: direction -> (chip, port); unused = nullopt.
  std::array<std::optional<PortRef>, kNumDirections> external;
  /// Cable clusters only: the parallel aggregated links (§V), in stripe
  /// order. external[East/West] mirrors entry 0.
  std::vector<PortRef> cable_ports;
};

/// route_around failure policy.
enum class RouteAroundPolicy {
  /// Any unreachable chip fails the whole recomputation with kUnavailable
  /// (the original behaviour — a degraded plan is all-or-nothing).
  kStrict,
  /// Drop unreachable Supernodes from the surviving chips' interval tables
  /// instead of failing: each surviving chip records them in
  /// unreachable_supernodes and next_hop() answers kUnavailable for their
  /// addresses. Only a partition *between survivors* (or a split coherent
  /// fabric inside a Supernode) still fails the call.
  kBestEffort,
};

/// The full cluster plan.
class ClusterPlan {
 public:
  /// Build a plan or explain why the configuration is impossible (port
  /// budget, register-pair budget, shape constraints).
  static Result<ClusterPlan> build(const ClusterConfig& config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<ChipPlan>& chips() const { return chips_; }
  [[nodiscard]] const std::vector<SupernodePlan>& supernodes() const {
    return supernodes_;
  }
  [[nodiscard]] const std::vector<WireSpec>& wires() const { return wires_; }

  /// The contiguous global address space (§IV.D).
  [[nodiscard]] AddrRange global_range() const;

  /// Which Supernode is home to `addr`, or error if outside the space.
  [[nodiscard]] Result<int> supernode_of(PhysAddr addr) const;

  /// Which chip's DRAM window contains `addr`.
  [[nodiscard]] Result<int> chip_of(PhysAddr addr) const;

  /// Grid coordinates of a Supernode: {x, y, z} (unused dimensions are 0).
  [[nodiscard]] std::array<int, 3> supernode_coords(int supernode) const;

  /// Fault domain of a chip: its Supernode's coordinate along the outermost
  /// nontrivial dimension (the z-plane of a 3-D torus, the row of a 2-D
  /// shape, the Supernode index of a 1-D one). Placement layers spread
  /// replicas across domains so one plane cut never takes every copy.
  [[nodiscard]] int fault_domain_of(int chip) const;

  /// Pure next-hop evaluation of the *planned* tables: from `chip`, where
  /// does a request to `addr` go? Used by the property tests to prove
  /// deadlock-free delivery without simulating. Returns the egress port, or
  /// nullopt when the chip sinks the request locally. Answers kUnavailable
  /// when `addr` belongs to a Supernode this chip recorded as unreachable
  /// (best-effort route_around).
  [[nodiscard]] Result<std::optional<int>> next_hop(int chip, PhysAddr addr) const;

  /// Follow next_hop() through the wire list until the packet sinks.
  /// Returns the chips visited (including start and sink); errors out after
  /// `max_hops` to catch routing loops.
  [[nodiscard]] Result<std::vector<int>> trace_route(int chip, PhysAddr addr,
                                                     int max_hops = 256) const;

  /// Hop distance between two supernodes along planned routes (external
  /// links only), for the multi-hop latency bench.
  [[nodiscard]] Result<int> external_hops(int from_supernode, int to_supernode) const;

  /// External wires crossing the narrowest axis bisection of the fabric —
  /// the wire count behind the bisection-bandwidth figure. Multiply by the
  /// negotiated per-link rate to get bytes/s.
  [[nodiscard]] int bisection_wires() const;

  /// Recompute routing with the given wires (indices into wires()) treated
  /// as dead. Returns a degraded plan whose route_to_member tables and MMIO
  /// intervals steer every chip around the failures along shortest surviving
  /// paths — the physical wire list is left intact. Under kStrict, fails
  /// with kUnavailable when the failures partition the cluster (naming the
  /// unreachable chips); under kBestEffort, unreachable Supernodes are
  /// dropped from the surviving tables instead (see RouteAroundPolicy).
  /// Fails with kResourceExhausted when a detour needs more base/limit
  /// pairs than the register budget.
  [[nodiscard]] Result<ClusterPlan> route_around(
      const std::vector<std::size_t>& failed_wires,
      RouteAroundPolicy policy = RouteAroundPolicy::kStrict) const;

 private:
  ClusterPlan() = default;

  ClusterConfig config_;
  std::vector<ChipPlan> chips_;
  std::vector<SupernodePlan> supernodes_;
  std::vector<WireSpec> wires_;
};

}  // namespace tcc::topology

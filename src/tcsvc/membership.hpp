// tcsvc membership: elastic cluster membership and online resharding for the
// serving tier — the control plane that turns the booted fabric's fixed
// server set into an operable cluster (join, planned drain, dead-node
// eviction with replica re-seeding), all while the open-loop workload keeps
// flowing.
//
// Structure: one MembershipAgent per participating chip (servers AND pure
// clients — clients need the epoch/map feed to route), plus one
// MembershipCoordinator co-located with one agent. Every membership change is
// a coordinator-driven rebalance with the same three-step shape:
//
//   PREPARE   broadcast the pending epoch, server set and move list. Stream
//             sources arm dual-write (every subsequently acked write is
//             forwarded synchronously to the shard's future owners); stream
//             targets reset any stale copy of an incoming shard (a rejoining
//             node may hold pre-death versions that would otherwise win the
//             version gate against reassigned ones).
//   MIGRATE   per move, the source walks the shard in key order and streams
//             it to the target in bounded tcrel-sized chunks (kMemChunk);
//             the target applies version-gated, so entries that also arrived
//             via dual-write dedupe. The source keeps serving throughout.
//   COMMIT    broadcast the new epoch + server set. Agents rebuild their
//             rendezvous map, drop shards they no longer own, disarm
//             dual-write, and close the degraded-write window if every owned
//             shard has a live partner again.
//
// Loss-freedom argument (the chaos soak asserts it end to end): an
// acknowledged write either (a) predates PREPARE — then it is behind the
// stream cursor and the snapshot carries it, or (b) follows PREPARE — then
// the synchronous dual-write placed it on every future owner before the ack.
// Version gating makes the overlap idempotent, and a client whose map is one
// epoch stale gets kFailedPrecondition from the old owner and re-resolves
// placement on the next retry attempt.
//
// The coordinator serializes rebalances behind a sim::Mutex, hooks the
// TcDriver keepalive verdict edge to auto-evict dead servers (promoting the
// surviving replica and re-seeding onto a domain-aware replacement via the
// ordinary move machinery), and registers the placement table as a diag
// section so health_report shows a rebalance in flight.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/mutex.hpp"
#include "tcsvc/kv.hpp"

namespace tcc::tcsvc {

/// RPC method ids of the membership protocol (4..15 reserved for kv/load).
inline constexpr std::uint16_t kMemJoin = 16;     ///< chip -> coordinator
inline constexpr std::uint16_t kMemLeave = 17;    ///< chip -> coordinator
inline constexpr std::uint16_t kMemPrepare = 18;  ///< coordinator -> agents
inline constexpr std::uint16_t kMemMigrate = 19;  ///< coordinator -> stream source
inline constexpr std::uint16_t kMemChunk = 20;    ///< stream source -> target
inline constexpr std::uint16_t kMemCommit = 21;   ///< coordinator -> agents
inline constexpr std::uint16_t kMemAux = 22;      ///< stream source -> target

struct MembershipConfig {
  /// Logical RPC channel of all membership traffic (client=0, replication=1).
  std::uint8_t channel = 2;
  /// Payload budget per kMemChunk frame (bounded stream: the source yields
  /// the wire between chunks, so migration never monopolizes a ring).
  std::uint32_t chunk_bytes = 2048;
  /// Budget of one control frame (prepare/commit/chunk).
  Picoseconds control_deadline = Picoseconds::from_us(200.0);
  /// Budget of one full shard stream (kMemMigrate call).
  Picoseconds migrate_deadline = Picoseconds::from_us(4000.0);
  /// Budget of one whole rebalance (join/leave round-trip deadline).
  Picoseconds rebalance_deadline = Picoseconds::from_us(20000.0);
  /// Evict a server automatically when the coordinator's keepalive declares
  /// it dead (replica promotion + re-seed onto a replacement).
  bool auto_heal = true;
};

/// One shard stream of a rebalance: `source` holds a live copy under the old
/// map, `target` owns one under the new map but holds none yet.
struct ShardMove {
  int shard = -1;
  int source = -1;
  int target = -1;
};

/// Compute the streams that turn placement `from` into `to`: one move per
/// (shard, new-pair member without a live copy), sourced from the old pair
/// (primary preferred, replica fallback, `dead` chips skipped). Members that
/// merely swap roles within a pair move nothing — rendezvous hashing keeps
/// that the common case.
[[nodiscard]] std::vector<ShardMove> placement_moves(
    const ShardMap& from, const ShardMap& to, const std::vector<int>& dead = {});

struct MembershipStats {
  std::uint64_t prepares = 0;      ///< kMemPrepare frames applied
  std::uint64_t commits = 0;       ///< kMemCommit frames applied (epoch advances)
  std::uint64_t shards_out = 0;    ///< migrations streamed as source
  std::uint64_t shards_in = 0;     ///< migrations received as target
  std::uint64_t entries_out = 0;
  std::uint64_t entries_in = 0;
  std::uint64_t chunks_out = 0;
  std::uint64_t dual_writes = 0;   ///< acked writes forwarded while source
  std::uint64_t aux_out = 0;       ///< kMemAux blobs streamed as source
  std::uint64_t aux_in = 0;        ///< kMemAux blobs applied as target
};

/// Per-shard auxiliary state that must travel with a shard migration but
/// lives outside the KV entry map — e.g. tcstore's idempotency (dedup)
/// records, which the new owner needs so a client retry spanning the cutover
/// still replays instead of double-applying. Implemented by the layered
/// store service and attached via MembershipAgent::attach_aux().
class ShardAuxStreamer {
 public:
  virtual ~ShardAuxStreamer() = default;
  /// Serialize `shard`'s aux state as opaque blobs, each at most `max_bytes`
  /// (a blob rides one kMemAux frame; the codec inside is the streamer's).
  [[nodiscard]] virtual std::vector<std::vector<std::uint8_t>> export_aux(
      int shard, std::uint32_t max_bytes) = 0;
  /// Apply one streamed blob on the migration target (idempotent).
  virtual void apply_aux(int shard, std::span<const std::uint8_t> blob) = 0;
  /// Drop `shard`'s aux state (incoming-stream reset, post-commit disown).
  virtual void reset_aux(int shard) = 0;
};

/// Per-chip membership state machine: holds the committed epoch + shard map,
/// answers the coordinator's prepare/migrate/commit, and feeds placement to
/// the co-located KvService/KvClient.
class MembershipAgent {
 public:
  /// `initial` is the epoch-0 placement every participant boots with (same
  /// ShardMap::from_plan call everywhere — deterministic).
  MembershipAgent(cluster::TcCluster& cluster, RpcNode& rpc, ShardMap initial,
                  MembershipConfig cfg = {});

  MembershipAgent(const MembershipAgent&) = delete;
  MembershipAgent& operator=(const MembershipAgent&) = delete;

  /// Register the kMemPrepare/kMemMigrate/kMemChunk/kMemCommit handlers.
  void start();

  /// Bind the co-located service/client: they start routing by this agent's
  /// map, and the service dual-writes through forward_targets().
  void attach_service(KvService* svc);
  void attach_client(KvClient* client);
  /// Attach a per-shard aux-state streamer (tcstore dedup records): its blobs
  /// ride the migration stream after the entry chunks, and it is reset on the
  /// same edges the KV copy is (incoming prepare, post-commit disown).
  void attach_aux(ShardAuxStreamer* aux) { aux_ = aux; }

  [[nodiscard]] int chip() const { return rpc_.chip(); }
  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// True between an applied prepare and its commit.
  [[nodiscard]] bool rebalancing() const { return pending_epoch_ > epoch_; }
  [[nodiscard]] const MembershipStats& stats() const { return stats_; }

  /// Migration targets the service must forward acked writes of `shard` to
  /// (empty outside a rebalance or when this node is not its source).
  [[nodiscard]] const std::vector<int>& forward_targets(int shard) const;
  /// Accounting hook for the service's dual-write path.
  void note_dual_write() { ++stats_.dual_writes; }

  /// Human-readable placement table (shard -> primary/replica, migration
  /// state, epoch) — the diag health_report section.
  [[nodiscard]] std::string placement_report() const;

  /// Ask `coordinator` to admit this chip into the serving set; resolves
  /// once the join rebalance committed (shards streamed in, epoch bumped).
  [[nodiscard]] sim::Task<Status> request_join(int coordinator);
  /// Planned drain: migrate every shard this chip owns elsewhere, then leave
  /// the serving set.
  [[nodiscard]] sim::Task<Status> request_leave(int coordinator);

 private:
  friend class MembershipCoordinator;

  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_prepare(
      const RpcContext& ctx, std::span<const std::uint8_t> body);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_migrate(
      const RpcContext& ctx, std::span<const std::uint8_t> body);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_chunk(
      const RpcContext& ctx, std::span<const std::uint8_t> body);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_commit(
      const RpcContext& ctx, std::span<const std::uint8_t> body);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_aux(
      const RpcContext& ctx, std::span<const std::uint8_t> body);

  cluster::TcCluster& cluster_;
  RpcNode& rpc_;
  MembershipConfig cfg_;
  ShardMap map_;
  std::uint64_t epoch_ = 0;
  std::uint64_t pending_epoch_ = 0;
  std::vector<ShardMove> moves_;        ///< the in-flight rebalance's moves
  std::map<int, std::vector<int>> forwards_;  ///< shard -> dual-write targets
  KvService* svc_ = nullptr;
  KvClient* client_ = nullptr;
  ShardAuxStreamer* aux_ = nullptr;
  MembershipStats stats_;
};

struct CoordinatorStats {
  std::uint64_t rebalances = 0;  ///< committed epoch changes
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t evictions = 0;   ///< dead-verdict auto-heals
  std::uint64_t failed = 0;      ///< rebalances abandoned mid-flight
};

/// The (single, fixed) coordinator: owns the participant roster, serializes
/// rebalances, serves kMemJoin/kMemLeave, and auto-evicts on its driver's
/// dead-peer verdicts. Coordinator failure is out of scope — it is the
/// membership tier's seed, like the rank-0 of the MPI layer.
class MembershipCoordinator {
 public:
  /// `self` is the agent on this coordinator's chip; `participants` is every
  /// chip speaking the protocol (serving or not). Servers are whatever
  /// self.map().servers() says.
  MembershipCoordinator(cluster::TcCluster& cluster, MembershipAgent& self,
                        std::vector<int> participants, MembershipConfig cfg = {});
  ~MembershipCoordinator();

  MembershipCoordinator(const MembershipCoordinator&) = delete;
  MembershipCoordinator& operator=(const MembershipCoordinator&) = delete;

  /// Register the join/leave handlers, hook the keepalive verdict edge
  /// (auto_heal) and publish the placement diag section.
  void start();

  [[nodiscard]] int chip() const { return self_.chip(); }
  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<int>& participants() const { return participants_; }

  /// Admit `chip` into the serving set (idempotent when already serving).
  [[nodiscard]] sim::Task<Status> admit(int chip);
  /// Drain `chip`'s shards away, then drop it from the serving set.
  [[nodiscard]] sim::Task<Status> drain(int chip);
  /// Remove a dead `chip` without streaming from it: surviving replicas are
  /// promoted by the new map and fresh replicas re-seed from them.
  [[nodiscard]] sim::Task<Status> evict(int chip);

 private:
  /// The one rebalance primitive everything above reduces to. `dead` chips
  /// are skipped as stream sources and excluded from broadcasts; `leaving`
  /// (or -1) marks a chip whose commit is best-effort.
  [[nodiscard]] sim::Task<Status> rebalance_to(std::vector<int> new_servers,
                                               std::vector<int> dead, int leaving);
  void on_verdict(int peer, bool alive);

  cluster::TcCluster& cluster_;
  MembershipAgent& self_;
  MembershipConfig cfg_;
  std::vector<int> participants_;
  std::vector<int> known_dead_;  ///< evicted chips, excluded until readmitted
  sim::Mutex rebalance_mutex_;
  CoordinatorStats stats_;
  int diag_section_id_ = -1;
};

}  // namespace tcc::tcsvc

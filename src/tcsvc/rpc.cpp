#include "tcsvc/rpc.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "tcsvc/metrics_internal.hpp"

namespace tcc::tcsvc {

void register_tcsvc_metrics() { TCC_METRIC((void)detail::metrics()); }

// ------------------------------------------------------------- RpcHeader --

namespace {
void put_u16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_i64(std::uint8_t* p, std::int64_t v) { std::memcpy(p, &v, 8); }
std::uint16_t get_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::int64_t get_i64(const std::uint8_t* p) {
  std::int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::vector<std::uint8_t> make_frame(const RpcHeader& hdr,
                                     std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(RpcHeader::kWireBytes + payload.size());
  hdr.encode(frame.data());
  std::copy(payload.begin(), payload.end(), frame.begin() + RpcHeader::kWireBytes);
  return frame;
}
}  // namespace

void RpcHeader::encode(std::uint8_t* out) const {
  out[0] = static_cast<std::uint8_t>(kind);
  out[1] = channel;
  put_u16(out + 2, method);
  put_u32(out + 4, corr);
  put_i64(out + 8, deadline_ps);
  put_u32(out + 16, status);
  put_u32(out + 20, reserved);
}

RpcHeader RpcHeader::decode(const std::uint8_t* in) {
  RpcHeader h;
  h.kind = static_cast<Kind>(in[0]);
  h.channel = in[1];
  h.method = get_u16(in + 2);
  h.corr = get_u32(in + 4);
  h.deadline_ps = get_i64(in + 8);
  h.status = get_u32(in + 16);
  h.reserved = get_u32(in + 20);
  return h;
}

// --------------------------------------------------------------- RpcNode --

RpcNode::RpcNode(cluster::TcCluster& cluster, int chip, RpcConfig cfg)
    : cluster_(cluster), chip_(chip), cfg_(cfg) {
  TCC_ASSERT(cfg_.request_credits > 0, "request_credits must be positive");
  register_tcsvc_metrics();
}

RpcNode::~RpcNode() {
  stopped_ = true;
  *alive_ = false;
}

void RpcNode::handle(std::uint16_t method, Handler handler) {
  handlers_[method] = std::move(handler);
}

Status RpcNode::start(std::span<const int> peers) {
  for (int peer : peers) {
    if (peer == chip_) continue;
    auto ps = peer_state(peer);
    if (!ps.ok()) return ps.error();
  }
  return Status{};
}

void RpcNode::resume() {
  if (!stopped_) return;
  stopped_ = false;
  for (auto& [peer, ps] : peers_) {
    if (ps->pump_running) continue;  // still draining its last slice
    PeerState* raw = ps.get();
    raw->pump_running = true;
    const int p = peer;
    cluster_.engine().spawn_fn(
        [this, raw, p]() -> sim::Task<void> { co_await pump(raw, p); });
  }
}

cluster::ReliableEndpoint* RpcNode::endpoint(int peer) {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second->ep;
}

int RpcNode::credits(int peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? cfg_.request_credits : it->second->credits;
}

Result<RpcNode::PeerState*> RpcNode::peer_state(int peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) return it->second.get();
  auto ep = cluster_.rel(chip_).connect(peer);
  if (!ep.ok()) return ep.error();
  auto ps = std::make_unique<PeerState>(cluster_.engine());
  ps->ep = ep.value();
  ps->credits = cfg_.request_credits;
  PeerState* raw = ps.get();
  peers_[peer] = std::move(ps);
  // Every endpoint pair gets exactly one receive pump: it demuxes requests,
  // responses and cancels, and keeps tcrel recovery moving while idle.
  raw->pump_running = true;
  cluster_.engine().spawn_fn(
      [this, raw, peer]() -> sim::Task<void> { co_await pump(raw, peer); });
  return raw;
}

sim::Task<void> RpcNode::pump(PeerState* ps, int peer) {
  sim::Engine& engine = cluster_.engine();
  while (!stopped_) {
    auto r = co_await ps->ep->recv(engine.now() + cfg_.serve_slice);
    if (!r.ok()) {
      if (r.error().code == ErrorCode::kTimeout) continue;  // idle slice
      // Transient raw-layer trouble (ring reset mid-recv, dead link): back
      // off one slice; tcrel recovery runs inside the next recv().
      co_await engine.delay(cfg_.serve_slice);
      continue;
    }
    dispatch(ps, peer, std::move(r).value());
  }
  ps->pump_running = false;
}

void RpcNode::dispatch(PeerState* ps, int peer, std::vector<std::uint8_t> frame) {
  if (frame.size() < RpcHeader::kWireBytes) return;  // not ours; drop
  const RpcHeader hdr = RpcHeader::decode(frame.data());
  sim::Engine& engine = cluster_.engine();
  switch (hdr.kind) {
    case RpcHeader::Kind::kRequest: {
      if (engine.now().count() > hdr.deadline_ps) {
        ++stats_.expired_dropped;
        TCC_METRIC(detail::metrics().rpc_expired.inc());
        return;  // the caller has already given up; do no dead work
      }
      engine.spawn_fn([this, ps, peer, f = std::move(frame)]() -> sim::Task<void> {
        co_await serve(ps, peer, std::move(f));
      });
      return;
    }
    case RpcHeader::Kind::kResponse:
    case RpcHeader::Kind::kError: {
      auto it = ps->pending.find(hdr.corr);
      if (it == ps->pending.end()) return;  // caller timed out; late reply
      auto pc = it->second;
      ps->pending.erase(it);
      if (hdr.kind == RpcHeader::Kind::kResponse) {
        pc->result.emplace(std::vector<std::uint8_t>(
            frame.begin() + RpcHeader::kWireBytes, frame.end()));
      } else {
        const bool valid = hdr.status >= 1 &&
                           hdr.status <= static_cast<std::uint32_t>(
                                             ErrorCode::kBackpressure) + 1;
        const auto code = valid ? static_cast<ErrorCode>(hdr.status - 1)
                                : ErrorCode::kProtocolViolation;
        std::string msg(frame.begin() + RpcHeader::kWireBytes, frame.end());
        pc->result.emplace(make_error(code, std::move(msg)));
      }
      pc->done = true;
      pc->wake.notify();
      return;
    }
    case RpcHeader::Kind::kCancel:
      note_cancel(ps, hdr.corr);
      return;
  }
}

sim::Task<void> RpcNode::serve(PeerState* ps, int peer,
                               std::vector<std::uint8_t> frame) {
  const RpcHeader hdr = RpcHeader::decode(frame.data());
  sim::Engine& engine = cluster_.engine();
  const Picoseconds start = engine.now();
  const RpcContext ctx{peer, hdr.method, hdr.channel, Picoseconds{hdr.deadline_ps}};
  const std::span<const std::uint8_t> body{frame.data() + RpcHeader::kWireBytes,
                                           frame.size() - RpcHeader::kWireBytes};

  Result<std::vector<std::uint8_t>> result =
      make_error(ErrorCode::kNotFound, "no such method");
  auto handler = handlers_.find(hdr.method);
  if (handler != handlers_.end()) {
    result = co_await handler->second(ctx, body);
  }
  ++stats_.requests_served;
  TCC_METRIC(detail::metrics().rpc_requests_served.inc());
  record_span({peer, hdr.method, hdr.channel, hdr.corr, start, engine.now(),
               result.ok() ? ErrorCode::kInvalidArgument : result.error().code,
               result.ok(), /*server=*/true});

  if (ps->cancelled.erase(hdr.corr) > 0) {
    ++stats_.cancelled_dropped;
    TCC_METRIC(detail::metrics().rpc_cancelled.inc());
    co_return;  // the caller cancelled; suppress the reply
  }
  if (engine.now().count() > hdr.deadline_ps) {
    ++stats_.expired_dropped;
    TCC_METRIC(detail::metrics().rpc_expired.inc());
    co_return;  // expired while the handler ran
  }

  RpcHeader reply;
  reply.channel = hdr.channel;
  reply.method = hdr.method;
  reply.corr = hdr.corr;
  reply.deadline_ps = hdr.deadline_ps;
  std::vector<std::uint8_t> reply_frame;
  if (result.ok()) {
    reply.kind = RpcHeader::Kind::kResponse;
    reply_frame = make_frame(reply, result.value());
  } else {
    reply.kind = RpcHeader::Kind::kError;
    reply.status = static_cast<std::uint32_t>(result.error().code) + 1;
    const std::string& msg = result.error().message;
    reply_frame = make_frame(
        reply, {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  }
  // Best-effort: a reply we cannot push before the caller's deadline is a
  // reply the caller will not read.
  (void)co_await ps->ep->send(reply_frame, Picoseconds{hdr.deadline_ps});
}

void RpcNode::note_cancel(PeerState* ps, std::uint32_t corr) {
  if (ps->cancelled.insert(corr).second) ps->cancelled_order.push_back(corr);
  while (ps->cancelled.size() > cfg_.max_cancelled && !ps->cancelled_order.empty()) {
    ps->cancelled.erase(ps->cancelled_order.front());
    ps->cancelled_order.pop_front();
  }
}

sim::Task<Result<std::vector<std::uint8_t>>> RpcNode::dispatch_local(
    std::uint16_t method, std::span<const std::uint8_t> payload, CallOptions opts) {
  sim::Engine& engine = cluster_.engine();
  const Picoseconds start = engine.now();
  const Picoseconds deadline =
      opts.deadline.value_or(start + cfg_.default_deadline);
  Result<std::vector<std::uint8_t>> result =
      make_error(ErrorCode::kNotFound, "no such method");
  auto handler = handlers_.find(method);
  if (handler != handlers_.end()) {
    const RpcContext ctx{chip_, method, opts.channel, deadline};
    result = co_await handler->second(ctx, payload);
  }
  ++stats_.requests_served;
  ++stats_.responses;
  TCC_METRIC(detail::metrics().rpc_requests_served.inc());
  TCC_METRIC(detail::metrics().rpc_responses.inc());
  record_span({chip_, method, opts.channel, 0, start, engine.now(),
               result.ok() ? ErrorCode::kInvalidArgument : result.error().code,
               result.ok(), /*server=*/false});
  co_return result;
}

sim::Task<Result<std::vector<std::uint8_t>>> RpcNode::call(
    int peer, std::uint16_t method, std::span<const std::uint8_t> payload,
    CallOptions opts) {
  sim::Engine& engine = cluster_.engine();
  ++stats_.calls;
  TCC_METRIC(detail::metrics().rpc_calls.inc());
  if (payload.size() > kMaxPayloadBytes) {
    co_return make_error(ErrorCode::kInvalidArgument, "rpc payload too large");
  }
  if (peer == chip_) {
    // Local dispatch: no ring between a node and itself (the rel layer
    // rejects self-connects), so serve straight out of the handler table.
    co_return co_await dispatch_local(method, payload, opts);
  }

  const Picoseconds start = engine.now();
  const Picoseconds deadline =
      opts.deadline.value_or(start + cfg_.default_deadline);
  auto ps_result = peer_state(peer);
  if (!ps_result.ok()) co_return ps_result.error();
  PeerState* ps = ps_result.value();

  // Admission check: a call whose deadline has already passed must not burn a
  // credit and a retransmit-buffer slot to deliver a guaranteed expired drop.
  if (engine.now() >= deadline) {
    ++stats_.timeouts;
    TCC_METRIC(detail::metrics().rpc_timeouts.inc());
    record_span({peer, method, opts.channel, 0, start, engine.now(),
                 ErrorCode::kTimeout, false, false});
    co_return make_error(ErrorCode::kTimeout, "deadline expired at admission");
  }

  // Acquire an outstanding-call credit; the deadline timer below doubles as
  // the bail-out wake-up so a starved caller never waits past its deadline.
  bool stalled = false;
  if (ps->credits == 0) {
    stalled = true;
    ++stats_.credit_stalls;
    TCC_METRIC(detail::metrics().rpc_credit_stalls.inc());
    sim::TimerHandle credit_timer =
        engine.schedule_timer_at(deadline, [alive = alive_, ps] {
          if (*alive) ps->credit_free.notify();
        });
    while (ps->credits == 0 && engine.now() < deadline) {
      co_await ps->credit_free.wait();
    }
    (void)engine.cancel(credit_timer);
    if (ps->credits == 0) {
      ++stats_.backpressure;
      TCC_METRIC(detail::metrics().rpc_backpressure.inc());
      record_span({peer, method, opts.channel, 0, start, engine.now(),
                   ErrorCode::kBackpressure, false, false});
      co_return make_error(ErrorCode::kBackpressure,
                           "no request credit before deadline");
    }
    if (engine.now() >= deadline) {
      // A credit freed up exactly at (or after) the deadline boundary:
      // admitting now would post a send whose tcrel deadline has already
      // passed. Leave the credit for a live caller.
      ++stats_.timeouts;
      TCC_METRIC(detail::metrics().rpc_timeouts.inc());
      record_span({peer, method, opts.channel, 0, start, engine.now(),
                   ErrorCode::kTimeout, false, false});
      co_return make_error(ErrorCode::kTimeout,
                           "deadline expired while waiting for credit");
    }
  }
  (void)stalled;
  CreditGuard credit(ps);

  RpcHeader hdr;
  hdr.kind = RpcHeader::Kind::kRequest;
  hdr.channel = opts.channel;
  hdr.method = method;
  hdr.corr = ps->next_corr++;
  hdr.deadline_ps = deadline.count();
  const std::uint32_t corr = hdr.corr;

  auto pc = std::make_shared<PendingCall>(engine);
  ps->pending[corr] = pc;

  const Status sent = co_await ps->ep->send(make_frame(hdr, payload), deadline);
  if (!sent.ok()) {
    ps->pending.erase(corr);
    credit.release();
    const bool bp = sent.error().code == ErrorCode::kBackpressure;
    if (bp) {
      ++stats_.backpressure;
      TCC_METRIC(detail::metrics().rpc_backpressure.inc());
    } else {
      ++stats_.timeouts;
      TCC_METRIC(detail::metrics().rpc_timeouts.inc());
    }
    record_span({peer, method, opts.channel, corr, start, engine.now(),
                 sent.error().code, false, false});
    co_return sent.error();
  }

  pc->deadline_timer = engine.schedule_timer_at(deadline, [pc] {
    if (!pc->done) pc->wake.notify();
  });
  while (!pc->done && engine.now() < deadline) {
    co_await pc->wake.wait();
  }
  (void)engine.cancel(pc->deadline_timer);
  credit.release();

  if (pc->done) {
    ++stats_.responses;
    TCC_METRIC(detail::metrics().rpc_responses.inc());
    Result<std::vector<std::uint8_t>> result = std::move(*pc->result);
    record_span({peer, method, opts.channel, corr, start, engine.now(),
                 result.ok() ? ErrorCode::kInvalidArgument : result.error().code,
                 result.ok(), false});
    co_return result;
  }

  // Deadline expired: tell the server not to bother replying. Fire and
  // forget — if the cancel cannot be pushed promptly it is pointless.
  ps->pending.erase(corr);
  ++stats_.timeouts;
  TCC_METRIC(detail::metrics().rpc_timeouts.inc());
  RpcHeader cancel;
  cancel.kind = RpcHeader::Kind::kCancel;
  cancel.channel = opts.channel;
  cancel.method = method;
  cancel.corr = corr;
  cancel.deadline_ps = (engine.now() + cfg_.serve_slice).count();
  ++stats_.cancels_sent;
  TCC_METRIC(detail::metrics().rpc_cancels.inc());
  engine.spawn_fn([alive = alive_, ps, cancel,
                   until = engine.now() + cfg_.serve_slice]() -> sim::Task<void> {
    if (!*alive) co_return;
    (void)co_await ps->ep->send(make_frame(cancel, {}), until);
  });
  record_span({peer, method, opts.channel, corr, start, engine.now(),
               ErrorCode::kTimeout, false, false});
  co_return make_error(ErrorCode::kTimeout, "rpc deadline expired");
}

void RpcNode::record_span(const RpcSpan& span) {
  if (spans_.size() >= cfg_.max_spans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(span);
}

// ---------------------------------------------------------- trace export --

void export_rpc_spans(telemetry::ChromeTraceWriter& writer,
                      std::span<RpcNode* const> nodes, int first_pid) {
  for (RpcNode* node : nodes) {
    const int pid = first_pid + node->chip();
    writer.set_process_name(pid, "chip " + std::to_string(node->chip()) + " rpc");
    writer.set_thread_name(pid, 0, "client calls");
    writer.set_thread_name(pid, 1, "handler runs");
    for (const RpcSpan& s : node->spans()) {
      telemetry::ChromeTraceWriter::Args args = {
          telemetry::ChromeTraceWriter::arg_num("peer",
                                                static_cast<std::uint64_t>(s.peer)),
          telemetry::ChromeTraceWriter::arg_num("corr",
                                                static_cast<std::uint64_t>(s.corr)),
          telemetry::ChromeTraceWriter::arg_num(
              "channel", static_cast<std::uint64_t>(s.channel)),
          telemetry::ChromeTraceWriter::arg_str("status",
                                                s.ok ? "ok" : to_string(s.status)),
      };
      writer.complete(pid, s.server ? 1 : 0, s.start.count(),
                      (s.end - s.start).count(),
                      "method " + std::to_string(s.method), "rpc",
                      std::move(args));
    }
    if (node->spans_dropped() > 0) {
      writer.instant(pid, 0, 0, "span log saturated", "rpc",
                     {telemetry::ChromeTraceWriter::arg_num(
                         "dropped", node->spans_dropped())});
    }
  }
}

Status write_rpc_trace(std::span<RpcNode* const> nodes, const std::string& path) {
  telemetry::ChromeTraceWriter writer;
  export_rpc_spans(writer, nodes);
  return writer.write(path);
}

}  // namespace tcc::tcsvc

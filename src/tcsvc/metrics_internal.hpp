// Internal to src/tcsvc: the cached-reference bundle for every tcsvc.*
// metric (same idiom as RelMetrics in tccluster/reliable.cpp — one registry
// lookup per process, one non-atomic add per event afterwards). The public
// registration hook is register_tcsvc_metrics() in rpc.hpp; the authoritative
// name list is the catalogue in docs/OBSERVABILITY.md.
#pragma once

#include "telemetry/metrics.hpp"

#if TCC_TELEMETRY_ENABLED

namespace tcc::tcsvc::detail {

struct SvcMetrics {
  telemetry::Counter& rpc_calls =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.calls");
  telemetry::Counter& rpc_responses =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.responses");
  telemetry::Counter& rpc_timeouts =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.timeouts");
  telemetry::Counter& rpc_cancels =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.cancels");
  telemetry::Counter& rpc_credit_stalls =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.credit_stalls");
  telemetry::Counter& rpc_backpressure =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.backpressure");
  telemetry::Counter& rpc_requests_served =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.requests_served");
  telemetry::Counter& rpc_expired =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.expired_dropped");
  telemetry::Counter& rpc_cancelled =
      telemetry::MetricsRegistry::global().counter("tcsvc.rpc.cancelled_dropped");
  telemetry::Counter& kv_gets =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.gets");
  telemetry::Counter& kv_puts =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.puts");
  telemetry::Counter& kv_misses =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.misses");
  telemetry::Counter& kv_replications =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.replications");
  telemetry::Counter& kv_not_primary =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.not_primary_rejects");
  telemetry::Counter& kv_degraded_writes =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.degraded_writes");
  telemetry::Counter& kv_failover_serves =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.failover_serves");
  telemetry::Counter& kv_expired_reads =
      telemetry::MetricsRegistry::global().counter("tcsvc.kv.expired_reads");
  telemetry::Gauge& kv_degraded_open =
      telemetry::MetricsRegistry::global().gauge("tcsvc.kv.degraded_open");
  telemetry::Gauge& membership_epoch =
      telemetry::MetricsRegistry::global().gauge("tcsvc.membership.epoch");
  telemetry::Counter& membership_joins =
      telemetry::MetricsRegistry::global().counter("tcsvc.membership.joins");
  telemetry::Counter& membership_leaves =
      telemetry::MetricsRegistry::global().counter("tcsvc.membership.leaves");
  telemetry::Counter& membership_evictions =
      telemetry::MetricsRegistry::global().counter("tcsvc.membership.evictions");
  telemetry::Counter& membership_rebalances =
      telemetry::MetricsRegistry::global().counter("tcsvc.membership.rebalances");
  telemetry::Counter& rebalance_shards_moved =
      telemetry::MetricsRegistry::global().counter("tcsvc.rebalance.shards_moved");
  telemetry::Counter& rebalance_entries_streamed = telemetry::MetricsRegistry::global().counter(
      "tcsvc.rebalance.entries_streamed");
  telemetry::Counter& rebalance_chunks =
      telemetry::MetricsRegistry::global().counter("tcsvc.rebalance.chunks");
  telemetry::Counter& rebalance_dual_writes =
      telemetry::MetricsRegistry::global().counter("tcsvc.rebalance.dual_writes");
  telemetry::Counter& load_offered =
      telemetry::MetricsRegistry::global().counter("tcsvc.load.offered");
  telemetry::Counter& load_completed =
      telemetry::MetricsRegistry::global().counter("tcsvc.load.completed");
  telemetry::Counter& load_failed =
      telemetry::MetricsRegistry::global().counter("tcsvc.load.failed");
  telemetry::Counter& load_slo_violations =
      telemetry::MetricsRegistry::global().counter("tcsvc.load.slo_violations");
};

inline SvcMetrics& metrics() {
  static SvcMetrics m;
  return m;
}

}  // namespace tcc::tcsvc::detail

#endif  // TCC_TELEMETRY_ENABLED

// tcsvc load: an open-loop load harness for the serving stack.
//
// Open-loop means arrivals are a Poisson process at a configured offered
// rate, independent of completions — the generator never waits for a
// response before issuing the next request, so queueing delay shows up as
// latency (the knee of the latency-vs-load curve) instead of silently
// throttling the arrival rate the way a closed loop would. Each arrival
// becomes an independent sim task with its own deadline.
//
// Key popularity is Zipfian (the YCSB generator: bounded zeta, exact for
// the first two ranks, power-law tail), with ranks scrambled through a
// 64-bit mixer so the hot keys land on uncorrelated shards.
//
// Everything is deterministic: one tcc::Rng seeded from the config drives
// interarrival gaps, the read/write coin and the key choice, and per-request
// latencies land in an exact-percentile tcc::Samples reservoir (p50/p99/
// p99.9 are nearest-rank over every request, not estimates).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "tcsvc/kv.hpp"

namespace tcc::tcsvc {

/// Service-level objective the report is judged against.
struct SloConfig {
  /// Per-request latency budget; a slower (or failed) request violates.
  Picoseconds latency_budget = Picoseconds::from_us(50.0);
  /// Fraction of offered requests allowed to violate (the error budget).
  double error_budget = 0.001;
};

struct LoadConfig {
  /// Offered arrival rate, requests per simulated second.
  double offered_rps = 100'000.0;
  double read_fraction = 0.9;
  /// Zipf skew in [0,1): 0 = uniform, 0.99 = YCSB-default hot-key skew.
  double zipf_theta = 0.99;
  std::uint64_t keys = 1000;
  std::uint32_t value_bytes = 128;
  /// Arrival window; in-flight requests drain after it (bounded by their
  /// own deadlines).
  Picoseconds duration = Picoseconds::from_us(1000.0);
  Picoseconds request_deadline = Picoseconds::from_us(500.0);
  std::uint64_t seed = 1;
  SloConfig slo;
};

struct LoadReport {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t slo_violations = 0;
  Samples latency_ns;  ///< per completed request
  Picoseconds started{};
  Picoseconds finished{};  ///< after the drain

  /// Completed requests per second of the measurement window.
  [[nodiscard]] double goodput_rps() const {
    const double s = (finished - started).seconds();
    return s > 0.0 ? static_cast<double>(completed) / s : 0.0;
  }
  [[nodiscard]] bool within_slo(const SloConfig& slo) const {
    return static_cast<double>(slo_violations) <=
           slo.error_budget * static_cast<double>(offered);
  }
};

/// YCSB-style bounded Zipfian rank generator: next() returns a rank in
/// [0, n), rank 0 most popular.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  [[nodiscard]] std::uint64_t next(Rng& rng);

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_ = 0.0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
};

/// Drives one KvClient with the configured workload.
class LoadGenerator {
 public:
  LoadGenerator(cluster::TcCluster& cluster, KvClient& client, LoadConfig cfg);

  /// The key string of a popularity rank (scrambled across shards).
  [[nodiscard]] std::string key_of(std::uint64_t rank) const;

  /// Write every key once (sequential, closed-loop) so the measured run
  /// has no cold misses. Fails on the first unsuccessful put.
  [[nodiscard]] sim::Task<Status> prefill();

  /// The open-loop run: Poisson arrivals for cfg.duration, then drain.
  [[nodiscard]] sim::Task<void> run();

  [[nodiscard]] const LoadReport& report() const { return report_; }
  [[nodiscard]] const LoadConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] sim::Task<void> one_request(bool is_read, std::uint64_t rank);

  cluster::TcCluster& cluster_;
  KvClient& client_;
  LoadConfig cfg_;
  Rng rng_;
  ZipfianGenerator zipf_;
  LoadReport report_;
};

}  // namespace tcc::tcsvc

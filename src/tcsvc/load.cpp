#include "tcsvc/load.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "sim/join.hpp"
#include "tcsvc/metrics_internal.hpp"

namespace tcc::tcsvc {

namespace {
std::uint64_t scramble(std::uint64_t x) {
  // fmix64: a bijection, so distinct ranks always map to distinct keys.
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  TCC_ASSERT(n_ > 0, "Zipfian needs a positive universe");
  TCC_ASSERT(theta_ >= 0.0 && theta_ < 1.0, "zipf theta must be in [0,1)");
  if (theta_ > 0.0) {
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
  if (theta_ == 0.0) return rng.next_below(n_);
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (n_ >= 2 && uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

LoadGenerator::LoadGenerator(cluster::TcCluster& cluster, KvClient& client,
                             LoadConfig cfg)
    : cluster_(cluster),
      client_(client),
      cfg_(cfg),
      rng_(cfg.seed),
      zipf_(cfg.keys, cfg.zipf_theta) {
  TCC_ASSERT(cfg_.offered_rps > 0.0, "offered_rps must be positive");
  register_tcsvc_metrics();
}

std::string LoadGenerator::key_of(std::uint64_t rank) const {
  return strprintf("k%016llx", static_cast<unsigned long long>(
                                   scramble(rank ^ (cfg_.seed << 17))));
}

sim::Task<Status> LoadGenerator::prefill() {
  std::vector<std::uint8_t> value(cfg_.value_bytes, 0);
  for (std::uint64_t rank = 0; rank < cfg_.keys; ++rank) {
    for (auto& b : value) b = static_cast<std::uint8_t>(rank);
    auto r = co_await client_.put(key_of(rank), value);
    if (!r.ok()) {
      co_return make_error(r.error().code,
                           "prefill rank " + std::to_string(rank) + ": " +
                               r.error().to_string());
    }
  }
  co_return Status{};
}

sim::Task<void> LoadGenerator::run() {
  sim::Engine& engine = cluster_.engine();
  report_ = LoadReport{};
  report_.started = engine.now();
  const Picoseconds end = engine.now() + cfg_.duration;
  sim::Joiner joiner(engine);

  while (true) {
    // Poisson arrivals: exponential interarrival at the offered rate.
    const double gap_s = -std::log1p(-rng_.next_double()) / cfg_.offered_rps;
    co_await engine.delay(Picoseconds::from_ns(gap_s * 1e9));
    if (engine.now() >= end) break;
    const bool is_read = rng_.next_bool(cfg_.read_fraction);
    const std::uint64_t rank = zipf_.next(rng_);
    ++report_.offered;
    TCC_METRIC(detail::metrics().load_offered.inc());
    joiner.launch_fn([this, is_read, rank]() -> sim::Task<void> {
      co_await one_request(is_read, rank);
    });
  }
  // Drain: every in-flight request self-terminates at its own deadline.
  co_await joiner.wait_all();
  report_.finished = engine.now();
}

sim::Task<void> LoadGenerator::one_request(bool is_read, std::uint64_t rank) {
  sim::Engine& engine = cluster_.engine();
  const std::string key = key_of(rank);
  const Picoseconds t0 = engine.now();
  const Picoseconds deadline = t0 + cfg_.request_deadline;
  bool ok;
  if (is_read) {
    ++report_.reads;
    auto r = co_await client_.get(key, deadline);
    // After prefill a miss cannot happen; without prefill it is still a
    // completed request (the store answered), not a serving failure.
    ok = r.ok() || r.error().code == ErrorCode::kNotFound;
  } else {
    ++report_.writes;
    std::vector<std::uint8_t> value(cfg_.value_bytes,
                                    static_cast<std::uint8_t>(rank + 1));
    auto r = co_await client_.put(key, value, deadline);
    ok = r.ok();
  }
  const Picoseconds latency = engine.now() - t0;
  if (ok) {
    ++report_.completed;
    report_.latency_ns.add(latency.nanoseconds());
    TCC_METRIC(detail::metrics().load_completed.inc());
  } else {
    ++report_.failed;
    TCC_METRIC(detail::metrics().load_failed.inc());
  }
  if (!ok || latency > cfg_.slo.latency_budget) {
    ++report_.slo_violations;
    TCC_METRIC(detail::metrics().load_slo_violations.inc());
  }
}

}  // namespace tcc::tcsvc

#include "tcsvc/membership.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "tcsvc/metrics_internal.hpp"

namespace tcc::tcsvc {

// ---------------------------------------------------------- wire codecs --
//
// All little-endian, riding the ordinary RPC payload (so tcrel exactly-once
// and the 24-byte RPC header apply unchanged):
//   join/leave:  u32 chip
//   prepare:     u64 pending_epoch, u16 nservers, u32 server[n],
//                u32 nmoves, { u32 shard, u32 source, u32 target }[m]
//   migrate:     u32 shard, u32 target
//   chunk:       u32 shard, u16 count,
//                { u16 klen, u64 version, i64 expires_at_ps, u32 vlen,
//                  key, value }[count]
//   aux:         u32 shard, blob (opaque to membership — ShardAuxStreamer's)
//   commit:      u64 epoch, u16 nservers, u32 server[n]

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const std::size_t at = out.size();
  out.resize(at + 2);
  std::memcpy(out.data() + at, &v, 2);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

/// Bounds-checked little-endian reader over a received body.
struct Reader {
  std::span<const std::uint8_t> body;
  std::size_t at = 0;
  bool ok = true;

  template <typename T>
  T get() {
    T v{};
    if (at + sizeof(T) > body.size()) {
      ok = false;
      return v;
    }
    std::memcpy(&v, body.data() + at, sizeof(T));
    at += sizeof(T);
    return v;
  }
  std::string_view bytes(std::size_t n) {
    if (at + n > body.size()) {
      ok = false;
      return {};
    }
    auto v = std::string_view(reinterpret_cast<const char*>(body.data()) + at, n);
    at += n;
    return v;
  }
};

std::vector<std::uint8_t> encode_chip(int chip) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(chip));
  return out;
}

std::vector<std::uint8_t> encode_prepare(std::uint64_t pending_epoch,
                                         const std::vector<int>& servers,
                                         const std::vector<ShardMove>& moves) {
  std::vector<std::uint8_t> out;
  put_u64(out, pending_epoch);
  put_u16(out, static_cast<std::uint16_t>(servers.size()));
  for (int s : servers) put_u32(out, static_cast<std::uint32_t>(s));
  put_u32(out, static_cast<std::uint32_t>(moves.size()));
  for (const ShardMove& m : moves) {
    put_u32(out, static_cast<std::uint32_t>(m.shard));
    put_u32(out, static_cast<std::uint32_t>(m.source));
    put_u32(out, static_cast<std::uint32_t>(m.target));
  }
  return out;
}

std::vector<std::uint8_t> encode_commit(std::uint64_t epoch,
                                        const std::vector<int>& servers) {
  std::vector<std::uint8_t> out;
  put_u64(out, epoch);
  put_u16(out, static_cast<std::uint16_t>(servers.size()));
  for (int s : servers) put_u32(out, static_cast<std::uint32_t>(s));
  return out;
}

std::vector<std::uint8_t> encode_migrate(int shard, int target) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(shard));
  put_u32(out, static_cast<std::uint32_t>(target));
  return out;
}

Error malformed(const char* what) {
  return make_error(ErrorCode::kProtocolViolation,
                    strprintf("malformed membership frame: %s", what));
}

}  // namespace

// ------------------------------------------------------- placement_moves --

std::vector<ShardMove> placement_moves(const ShardMap& from, const ShardMap& to,
                                       const std::vector<int>& dead) {
  TCC_ASSERT(from.shards() == to.shards(),
             "placement_moves across different shard counts");
  const std::set<int> dead_set(dead.begin(), dead.end());
  std::vector<ShardMove> moves;
  for (int s = 0; s < to.shards(); ++s) {
    const int old_p = from.primary(s);
    const int old_r = from.replica(s);
    int source = -1;
    if (old_p >= 0 && dead_set.count(old_p) == 0) {
      source = old_p;
    } else if (old_r >= 0 && dead_set.count(old_r) == 0) {
      source = old_r;
    }
    for (const int member : {to.primary(s), to.replica(s)}) {
      if (member < 0 || member == old_p || member == old_r) continue;
      // No live copy left to stream from: nothing we can do for this shard
      // (a double fault ate both members); the new pair starts empty.
      if (source < 0) continue;
      moves.push_back(ShardMove{s, source, member});
    }
  }
  return moves;
}

// -------------------------------------------------------- MembershipAgent --

MembershipAgent::MembershipAgent(cluster::TcCluster& cluster, RpcNode& rpc,
                                 ShardMap initial, MembershipConfig cfg)
    : cluster_(cluster), rpc_(rpc), cfg_(cfg), map_(std::move(initial)) {}

void MembershipAgent::start() {
  rpc_.handle(kMemPrepare,
              [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
                return on_prepare(ctx, b);
              });
  rpc_.handle(kMemMigrate,
              [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
                return on_migrate(ctx, b);
              });
  rpc_.handle(kMemChunk,
              [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
                return on_chunk(ctx, b);
              });
  rpc_.handle(kMemCommit,
              [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
                return on_commit(ctx, b);
              });
  rpc_.handle(kMemAux,
              [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
                return on_aux(ctx, b);
              });
}

void MembershipAgent::attach_service(KvService* svc) {
  svc_ = svc;
  if (svc_ != nullptr) svc_->set_membership(this);
}

void MembershipAgent::attach_client(KvClient* client) {
  client_ = client;
  if (client_ != nullptr) client_->set_membership(this);
}

const std::vector<int>& MembershipAgent::forward_targets(int shard) const {
  static const std::vector<int> kNone;
  const auto it = forwards_.find(shard);
  return it == forwards_.end() ? kNone : it->second;
}

std::string MembershipAgent::placement_report() const {
  std::string out = strprintf("== placement (chip %d, epoch %llu, %d shards",
                              chip(), static_cast<unsigned long long>(epoch_),
                              map_.shards());
  out += ", servers";
  for (int s : map_.servers()) out += strprintf(" %d", s);
  out += ") ==\n";
  std::map<int, const ShardMove*> moving;
  for (const ShardMove& m : moves_) moving[m.shard] = &m;
  for (int s = 0; s < map_.shards(); ++s) {
    out += strprintf("  shard %2d: primary %d, replica %d", s, map_.primary(s),
                     map_.replica(s));
    if (const auto it = moving.find(s); it != moving.end()) {
      out += strprintf("  MIGRATING %d -> %d (pending epoch %llu)",
                       it->second->source, it->second->target,
                       static_cast<unsigned long long>(pending_epoch_));
    }
    out += "\n";
  }
  return out;
}

sim::Task<Result<std::vector<std::uint8_t>>> MembershipAgent::on_prepare(
    const RpcContext&, std::span<const std::uint8_t> body) {
  Reader r{body};
  const std::uint64_t pending = r.get<std::uint64_t>();
  const int nservers = r.get<std::uint16_t>();
  for (int i = 0; i < nservers; ++i) (void)r.get<std::uint32_t>();
  const auto nmoves = r.get<std::uint32_t>();
  std::vector<ShardMove> moves;
  moves.reserve(nmoves);
  for (std::uint32_t i = 0; i < nmoves && r.ok; ++i) {
    ShardMove m;
    m.shard = static_cast<int>(r.get<std::uint32_t>());
    m.source = static_cast<int>(r.get<std::uint32_t>());
    m.target = static_cast<int>(r.get<std::uint32_t>());
    moves.push_back(m);
  }
  if (!r.ok) co_return malformed("prepare");

  pending_epoch_ = pending;
  moves_ = std::move(moves);
  forwards_.clear();
  const int self = chip();
  for (const ShardMove& m : moves_) {
    if (m.source == self) forwards_[m.shard].push_back(m.target);
    if (m.target == self && svc_ != nullptr) {
      // The coordinator only streams to members without a live copy under
      // the authoritative old map, so any local state is stale (a rejoin's
      // pre-death leftovers) and must not win the version gate.
      svc_->reset_shard(m.shard);
      if (aux_ != nullptr) aux_->reset_aux(m.shard);
      ++stats_.shards_in;
    }
  }
  ++stats_.prepares;
  co_return std::vector<std::uint8_t>{};
}

sim::Task<Result<std::vector<std::uint8_t>>> MembershipAgent::on_migrate(
    const RpcContext& ctx, std::span<const std::uint8_t> body) {
  Reader r{body};
  const int shard = static_cast<int>(r.get<std::uint32_t>());
  const int target = static_cast<int>(r.get<std::uint32_t>());
  if (!r.ok) co_return malformed("migrate");
  if (svc_ == nullptr) {
    co_return make_error(ErrorCode::kFailedPrecondition,
                         "migrate on a chip without a KV service");
  }

  // Stream the shard snapshot in key order, one bounded chunk per frame.
  // Writes that land behind the cursor while we stream are covered by the
  // dual-write armed at prepare; writes ahead of it are simply re-read.
  std::string cursor;
  std::uint64_t sent = 0;
  for (;;) {
    const auto entries = svc_->export_shard(shard, cursor, cfg_.chunk_bytes);
    if (entries.empty()) break;
    std::vector<std::uint8_t> chunk;
    put_u32(chunk, static_cast<std::uint32_t>(shard));
    put_u16(chunk, static_cast<std::uint16_t>(entries.size()));
    for (const auto& e : entries) {
      put_u16(chunk, static_cast<std::uint16_t>(e.key.size()));
      put_u64(chunk, e.version);
      put_u64(chunk, static_cast<std::uint64_t>(e.expires_at_ps));
      put_u32(chunk, static_cast<std::uint32_t>(e.value.size()));
      chunk.insert(chunk.end(), e.key.begin(), e.key.end());
      chunk.insert(chunk.end(), e.value.begin(), e.value.end());
    }
    CallOptions opts;
    opts.channel = cfg_.channel;
    opts.deadline = std::min(ctx.deadline,
                             cluster_.engine().now() + cfg_.control_deadline);
    auto sent_r = co_await rpc_.call(target, kMemChunk, chunk, opts);
    if (!sent_r.ok()) co_return sent_r.error();
    cursor = entries.back().key;
    sent += entries.size();
    ++stats_.chunks_out;
    TCC_METRIC(detail::metrics().rebalance_chunks.inc());
  }
  // Aux state (tcstore dedup records) follows the entry snapshot: every
  // record present when the stream started travels; records created after
  // PREPARE are placed on the target by the store's own dual-write path.
  if (aux_ != nullptr) {
    for (const auto& blob : aux_->export_aux(shard, cfg_.chunk_bytes)) {
      std::vector<std::uint8_t> frame;
      put_u32(frame, static_cast<std::uint32_t>(shard));
      frame.insert(frame.end(), blob.begin(), blob.end());
      CallOptions opts;
      opts.channel = cfg_.channel;
      opts.deadline = std::min(ctx.deadline,
                               cluster_.engine().now() + cfg_.control_deadline);
      auto aux_r = co_await rpc_.call(target, kMemAux, frame, opts);
      if (!aux_r.ok()) co_return aux_r.error();
      ++stats_.aux_out;
    }
  }
  stats_.entries_out += sent;
  ++stats_.shards_out;
  TCC_METRIC(detail::metrics().rebalance_shards_moved.inc());
  TCC_METRIC(detail::metrics().rebalance_entries_streamed.inc(sent));

  std::vector<std::uint8_t> reply;
  put_u64(reply, sent);
  co_return reply;
}

sim::Task<Result<std::vector<std::uint8_t>>> MembershipAgent::on_chunk(
    const RpcContext&, std::span<const std::uint8_t> body) {
  Reader r{body};
  const int shard = static_cast<int>(r.get<std::uint32_t>());
  const int count = r.get<std::uint16_t>();
  if (svc_ == nullptr) {
    co_return make_error(ErrorCode::kFailedPrecondition,
                         "chunk on a chip without a KV service");
  }
  for (int i = 0; i < count && r.ok; ++i) {
    const auto klen = r.get<std::uint16_t>();
    const auto version = r.get<std::uint64_t>();
    const auto expires_at_ps = static_cast<std::int64_t>(r.get<std::uint64_t>());
    const auto vlen = r.get<std::uint32_t>();
    const std::string_view key = r.bytes(klen);
    const std::string_view value = r.bytes(vlen);
    if (!r.ok) break;
    svc_->apply_entry(shard, key, version,
                      std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(value.data()),
                          value.size()),
                      expires_at_ps);
    ++stats_.entries_in;
  }
  if (!r.ok) co_return malformed("chunk");
  co_return std::vector<std::uint8_t>{};
}

sim::Task<Result<std::vector<std::uint8_t>>> MembershipAgent::on_aux(
    const RpcContext&, std::span<const std::uint8_t> body) {
  Reader r{body};
  const int shard = static_cast<int>(r.get<std::uint32_t>());
  if (!r.ok) co_return malformed("aux");
  if (aux_ != nullptr) {
    aux_->apply_aux(shard, body.subspan(4));
    ++stats_.aux_in;
  }
  co_return std::vector<std::uint8_t>{};
}

sim::Task<Result<std::vector<std::uint8_t>>> MembershipAgent::on_commit(
    const RpcContext&, std::span<const std::uint8_t> body) {
  Reader r{body};
  const std::uint64_t epoch = r.get<std::uint64_t>();
  const int nservers = r.get<std::uint16_t>();
  std::vector<int> servers;
  servers.reserve(static_cast<std::size_t>(nservers));
  for (int i = 0; i < nservers && r.ok; ++i) {
    servers.push_back(static_cast<int>(r.get<std::uint32_t>()));
  }
  if (!r.ok || servers.empty()) co_return malformed("commit");

  // Duplicate delivery (tcrel replay, coordinator retry) is idempotent: the
  // same epoch + servers rebuild the same map.
  epoch_ = epoch;
  pending_epoch_ = epoch;
  map_ = ShardMap::from_plan(cluster_.plan(), std::move(servers), map_.shards());
  moves_.clear();
  forwards_.clear();
  ++stats_.commits;
  TCC_METRIC(detail::metrics().membership_epoch.set(static_cast<double>(epoch)));
  if (svc_ != nullptr) {
    svc_->drop_unowned();
    svc_->clear_degraded_if_restored();
  }
  if (aux_ != nullptr) {
    const int self = chip();
    for (int s = 0; s < map_.shards(); ++s) {
      if (map_.primary(s) != self && map_.replica(s) != self) aux_->reset_aux(s);
    }
  }
  TCC_INFO("tcsvc", "chip %d: membership epoch %llu committed", chip(),
           static_cast<unsigned long long>(epoch));
  co_return std::vector<std::uint8_t>{};
}

sim::Task<Status> MembershipAgent::request_join(int coordinator) {
  CallOptions opts;
  opts.channel = cfg_.channel;
  opts.deadline = cluster_.engine().now() + cfg_.rebalance_deadline;
  auto r = co_await rpc_.call(coordinator, kMemJoin, encode_chip(chip()), opts);
  co_return r.ok() ? Status{} : r.error();
}

sim::Task<Status> MembershipAgent::request_leave(int coordinator) {
  CallOptions opts;
  opts.channel = cfg_.channel;
  opts.deadline = cluster_.engine().now() + cfg_.rebalance_deadline;
  auto r = co_await rpc_.call(coordinator, kMemLeave, encode_chip(chip()), opts);
  co_return r.ok() ? Status{} : r.error();
}

// -------------------------------------------------- MembershipCoordinator --

MembershipCoordinator::MembershipCoordinator(cluster::TcCluster& cluster,
                                             MembershipAgent& self,
                                             std::vector<int> participants,
                                             MembershipConfig cfg)
    : cluster_(cluster),
      self_(self),
      cfg_(cfg),
      participants_(std::move(participants)),
      rebalance_mutex_(cluster.engine()) {
  std::sort(participants_.begin(), participants_.end());
  participants_.erase(std::unique(participants_.begin(), participants_.end()),
                      participants_.end());
}

MembershipCoordinator::~MembershipCoordinator() {
  if (diag_section_id_ >= 0) cluster_.remove_diag_section(diag_section_id_);
}

void MembershipCoordinator::start() {
  RpcNode& rpc = self_.rpc_;
  rpc.handle(kMemJoin,
             [this](const RpcContext&, std::span<const std::uint8_t> body)
                 -> sim::Task<Result<std::vector<std::uint8_t>>> {
               Reader r{body};
               const int who = static_cast<int>(r.get<std::uint32_t>());
               if (!r.ok) co_return malformed("join");
               if (Status s = co_await admit(who); !s.ok()) co_return s.error();
               co_return std::vector<std::uint8_t>{};
             });
  rpc.handle(kMemLeave,
             [this](const RpcContext&, std::span<const std::uint8_t> body)
                 -> sim::Task<Result<std::vector<std::uint8_t>>> {
               Reader r{body};
               const int who = static_cast<int>(r.get<std::uint32_t>());
               if (!r.ok) co_return malformed("leave");
               if (Status s = co_await drain(who); !s.ok()) co_return s.error();
               co_return std::vector<std::uint8_t>{};
             });
  cluster_.driver(chip()).set_verdict_callback(
      [this](int peer, bool alive) { on_verdict(peer, alive); });
  diag_section_id_ =
      cluster_.add_diag_section([this] { return self_.placement_report(); });
}

void MembershipCoordinator::on_verdict(int peer, bool alive) {
  if (alive || !cfg_.auto_heal) return;
  const auto& servers = self_.map().servers();
  if (std::find(servers.begin(), servers.end(), peer) == servers.end()) return;
  TCC_WARN("tcsvc", "coordinator %d: server %d judged dead — auto-evicting",
           chip(), peer);
  cluster_.engine().spawn_fn([this, peer]() -> sim::Task<void> {
    Status s = co_await evict(peer);
    if (!s.ok()) {
      TCC_WARN("tcsvc", "coordinator %d: eviction of %d failed: %s", chip(),
               peer, s.error().to_string().c_str());
    }
  });
}

sim::Task<Status> MembershipCoordinator::admit(int who) {
  auto guard = co_await rebalance_mutex_.scoped();
  std::vector<int> servers = self_.map().servers();
  if (std::find(servers.begin(), servers.end(), who) != servers.end()) {
    co_return Status{};  // already serving
  }
  if (std::find(participants_.begin(), participants_.end(), who) ==
      participants_.end()) {
    participants_.push_back(who);
    std::sort(participants_.begin(), participants_.end());
  }
  known_dead_.erase(std::remove(known_dead_.begin(), known_dead_.end(), who),
                    known_dead_.end());
  servers.push_back(who);
  Status s = co_await rebalance_to(std::move(servers), known_dead_, -1);
  if (s.ok()) {
    ++stats_.joins;
    TCC_METRIC(detail::metrics().membership_joins.inc());
  }
  co_return s;
}

sim::Task<Status> MembershipCoordinator::drain(int who) {
  auto guard = co_await rebalance_mutex_.scoped();
  std::vector<int> servers = self_.map().servers();
  const auto it = std::find(servers.begin(), servers.end(), who);
  if (it == servers.end()) co_return Status{};  // not serving
  if (servers.size() == 1) {
    co_return make_error(ErrorCode::kFailedPrecondition,
                         "cannot drain the last server");
  }
  servers.erase(it);
  Status s = co_await rebalance_to(std::move(servers), known_dead_, who);
  if (s.ok()) {
    ++stats_.leaves;
    TCC_METRIC(detail::metrics().membership_leaves.inc());
  }
  co_return s;
}

sim::Task<Status> MembershipCoordinator::evict(int who) {
  auto guard = co_await rebalance_mutex_.scoped();
  std::vector<int> servers = self_.map().servers();
  const auto it = std::find(servers.begin(), servers.end(), who);
  if (it == servers.end()) co_return Status{};  // already out (duplicate verdict)
  if (servers.size() == 1) {
    co_return make_error(ErrorCode::kFailedPrecondition,
                         "cannot evict the last server");
  }
  servers.erase(it);
  if (std::find(known_dead_.begin(), known_dead_.end(), who) ==
      known_dead_.end()) {
    known_dead_.push_back(who);
  }
  Status s = co_await rebalance_to(std::move(servers), known_dead_, -1);
  if (s.ok()) {
    ++stats_.evictions;
    TCC_METRIC(detail::metrics().membership_evictions.inc());
  }
  co_return s;
}

sim::Task<Status> MembershipCoordinator::rebalance_to(
    std::vector<int> new_servers, std::vector<int> dead, int leaving) {
  TCC_ASSERT(rebalance_mutex_.held(), "rebalance_to needs the mutex held");
  sim::Engine& engine = cluster_.engine();
  const std::set<int> dead_set(dead.begin(), dead.end());
  std::sort(new_servers.begin(), new_servers.end());

  const ShardMap& old_map = self_.map();
  const ShardMap new_map =
      ShardMap::from_plan(cluster_.plan(), new_servers, old_map.shards());
  const std::vector<ShardMove> moves = placement_moves(old_map, new_map, dead);
  const std::uint64_t pending = self_.epoch() + 1;

  // Broadcast targets: every live participant. The coordinator itself is
  // included — peer == self dispatches locally through the same handler.
  std::vector<int> targets;
  for (int p : participants_) {
    if (dead_set.count(p) == 0) targets.push_back(p);
  }

  auto broadcast = [&](std::uint16_t method, const std::vector<std::uint8_t>& body,
                       const char* what) -> sim::Task<Status> {
    for (int t : targets) {
      CallOptions opts;
      opts.channel = cfg_.channel;
      opts.deadline = engine.now() + cfg_.control_deadline;
      auto r = co_await self_.rpc_.call(t, method, body, opts);
      if (!r.ok() && t != leaving) {
        co_return make_error(r.error().code,
                             strprintf("%s to chip %d failed: %s", what, t,
                                       r.error().to_string().c_str()));
      }
    }
    co_return Status{};
  };

  // PREPARE: arm dual-writes at sources, reset stale copies at targets.
  if (Status s = co_await broadcast(kMemPrepare,
                                    encode_prepare(pending, new_servers, moves),
                                    "prepare");
      !s.ok()) {
    ++stats_.failed;
    co_return s;
  }

  // MIGRATE: drive each stream source; it serves traffic while streaming.
  for (const ShardMove& m : moves) {
    CallOptions opts;
    opts.channel = cfg_.channel;
    opts.deadline = engine.now() + cfg_.migrate_deadline;
    auto r = co_await self_.rpc_.call(m.source, kMemMigrate,
                                      encode_migrate(m.shard, m.target), opts);
    if (!r.ok()) {
      ++stats_.failed;
      co_return make_error(
          r.error().code,
          strprintf("migrate shard %d (%d -> %d) failed: %s", m.shard, m.source,
                    m.target, r.error().to_string().c_str()));
    }
  }

  // COMMIT: cut placement over. Every streamed shard is complete (snapshot +
  // dual-writes), so the new owners serve from the first post-commit request.
  if (Status s = co_await broadcast(kMemCommit,
                                    encode_commit(pending, new_servers),
                                    "commit");
      !s.ok()) {
    ++stats_.failed;
    co_return s;
  }
  ++stats_.rebalances;
  TCC_METRIC(detail::metrics().membership_rebalances.inc());
  TCC_INFO("tcsvc",
           "coordinator %d: epoch %llu committed (%zu servers, %zu moves)",
           chip(), static_cast<unsigned long long>(pending), new_servers.size(),
           moves.size());
  co_return Status{};
}

}  // namespace tcc::tcsvc

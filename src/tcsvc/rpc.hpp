// tcsvc RPC: request/response framing over tcrel, the first serving-layer
// primitive on top of the exactly-once message substrate.
//
// One RpcNode per chip multiplexes any number of logical channels and
// outstanding calls per peer over a single tcrel endpoint pair:
//
//  * every frame starts with a fixed 24-byte header carrying the frame kind,
//    logical channel, method id, correlation id, absolute deadline and a
//    typed status. tcrel already spends the entire 32-bit slot-marker tag on
//    its own header (rel flag, seq width, kind, epoch, wire seq — see
//    reliable.cpp), so the RPC header rides in the payload's first bytes
//    instead of the marker word; at 24 bytes it costs well under 1% of a
//    full frame and keeps the tcrel wire format untouched,
//  * correlation ids pair responses with pending calls, so any number of
//    calls overlap on one ordered stream; logical channels let independent
//    request classes (e.g. client traffic vs replication) share the pair
//    without inventing more rings,
//  * per-peer request credits bound the outstanding-call window. A call
//    first waits for a credit (typed kBackpressure once its deadline
//    passes — the same contract tcrel's window-full send has, surfaced one
//    layer up), so an open-loop overload degrades into queueing delay and
//    typed rejections instead of unbounded buffering,
//  * deadlines are absolute simulated times, propagated down into the tcrel
//    send/recv deadlines and across the wire to the server, which drops
//    requests that expired in flight instead of doing dead work,
//  * a timed-out caller best-effort posts a cancel frame; the server keeps a
//    bounded set of cancelled correlation ids and suppresses those
//    responses. Errors come back as typed frames (ErrorCode + message), not
//    as silence.
//
// Per-call client/server spans land in a bounded log that exports to
// Perfetto through telemetry::ChromeTraceWriter (write_rpc_trace), and the
// tcsvc.rpc.* metrics feed the global registry (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "tccluster/cluster.hpp"
#include "telemetry/chrome_trace.hpp"

namespace tcc::tcsvc {

/// Register the tcsvc.* metric names with the global registry so the docs
/// catalogue test sees them even in runs that never serve a request. No-op
/// without telemetry.
void register_tcsvc_metrics();

/// Tuning knobs of one RpcNode.
struct RpcConfig {
  /// Outstanding-call window per peer; a call with no credit by its
  /// deadline returns typed kBackpressure.
  int request_credits = 16;
  /// Deadline for calls that do not pass their own (relative to call time).
  Picoseconds default_deadline = Picoseconds::from_us(500.0);
  /// Receive-slice of the per-peer serve pump: how often it wakes to notice
  /// stop() and run tcrel recovery while a peer idles.
  Picoseconds serve_slice = Picoseconds::from_us(5.0);
  /// Poll period while waiting for a request credit.
  Picoseconds credit_poll = Picoseconds::from_ns(500.0);
  /// Cap on the per-node span log (Perfetto export); drops are counted.
  std::size_t max_spans = 4096;
  /// Cap on the per-peer cancelled-correlation set (FIFO eviction).
  std::size_t max_cancelled = 1024;
};

/// Per-node counters (process-wide aggregates live in tcsvc.rpc.*).
struct RpcStats {
  std::uint64_t calls = 0;            ///< requests issued by call()
  std::uint64_t responses = 0;        ///< completions handed back to callers (ok or typed error)
  std::uint64_t timeouts = 0;         ///< calls that hit their deadline
  std::uint64_t cancels_sent = 0;     ///< best-effort cancel frames posted after a timeout
  std::uint64_t credit_stalls = 0;    ///< calls that had to wait for a request credit
  std::uint64_t backpressure = 0;     ///< calls rejected with kBackpressure
  std::uint64_t requests_served = 0;  ///< handler invocations completed server-side
  std::uint64_t expired_dropped = 0;  ///< requests dropped: deadline passed before dispatch
  std::uint64_t cancelled_dropped = 0;///< responses suppressed by a cancel frame
};

/// One client- or server-side call span for the Perfetto export.
struct RpcSpan {
  int peer = -1;
  std::uint16_t method = 0;
  std::uint8_t channel = 0;
  std::uint32_t corr = 0;
  Picoseconds start{};
  Picoseconds end{};
  ErrorCode status = ErrorCode::kInvalidArgument;  ///< meaningful iff !ok
  bool ok = true;
  bool server = false;  ///< true: handler execution; false: caller wait
};

/// What a handler learns about the request it is serving.
struct RpcContext {
  int peer = -1;            ///< calling chip
  std::uint16_t method = 0;
  std::uint8_t channel = 0;
  Picoseconds deadline{};   ///< absolute; the caller gives up past this
};

/// Per-call options.
struct CallOptions {
  std::uint8_t channel = 0;
  /// Absolute deadline; RpcConfig::default_deadline from now when absent.
  std::optional<Picoseconds> deadline;
};

class RpcNode {
 public:
  /// A handler returns the response payload or a typed error; both travel
  /// back to the caller as a frame. Handlers run as independent sim tasks,
  /// so a slow method never blocks the receive pump.
  using Handler = std::function<sim::Task<Result<std::vector<std::uint8_t>>>(
      const RpcContext&, std::span<const std::uint8_t>)>;

  /// Largest request/response payload: one tcrel message minus the 24-byte
  /// wire header (RpcHeader::kWireBytes, kept literal here so the header
  /// struct can be declared after the node that speaks it).
  static constexpr std::uint32_t kMaxPayloadBytes =
      cluster::ReliableEndpoint::kMaxPayloadBytes - 24;

  RpcNode(cluster::TcCluster& cluster, int chip, RpcConfig cfg = {});

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;
  ~RpcNode();

  [[nodiscard]] int chip() const { return chip_; }
  [[nodiscard]] const RpcStats& stats() const { return stats_; }
  [[nodiscard]] const RpcConfig& config() const { return cfg_; }

  /// Register (or replace) the handler for `method`.
  void handle(std::uint16_t method, Handler handler);

  /// Open endpoints and start a serve pump toward each peer. call() also
  /// starts a pump on demand; start() is for servers that must listen
  /// before the first outbound call.
  Status start(std::span<const int> peers);

  /// Stop every serve pump (they exit within one serve_slice) so
  /// engine().run() can drain. In-flight handler tasks still finish.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Undo stop(): restart the serve pump toward every known peer. This is
  /// the warm-reset rejoin path — a node that went dark (hung driver, RPC
  /// stopped) comes back on the same endpoints; tcrel epoch sync reconciles
  /// the streams underneath.
  void resume();

  /// Issue one call and wait for the response, a typed error reply, or the
  /// deadline. `peer == chip()` dispatches locally without touching a ring.
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> call(
      int peer, std::uint16_t method, std::span<const std::uint8_t> payload,
      CallOptions opts = {});

  // ---- introspection (tests, trace export) -------------------------------
  /// Free request credits toward `peer` right now — the full configured pool
  /// when no call is outstanding (also for peers never called). The
  /// credit-leak regression oracle: after any storm of timeouts/cancels
  /// drains, this must read request_credits again.
  [[nodiscard]] int credits(int peer) const;
  [[nodiscard]] const std::vector<RpcSpan>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }
  /// The tcrel endpoint behind `peer`, nullptr before first use (tests
  /// assert on its epoch to bound failover cost).
  [[nodiscard]] cluster::ReliableEndpoint* endpoint(int peer);

 private:
  struct PendingCall {
    explicit PendingCall(sim::Engine& engine) : wake(engine) {}
    bool done = false;
    std::optional<Result<std::vector<std::uint8_t>>> result;
    sim::Trigger wake;
    /// Deadline wake-up; cancelled once the call completes so finished
    /// calls don't leave dead timer events polluting the engine queue.
    sim::TimerHandle deadline_timer;
  };

  struct PeerState {
    explicit PeerState(sim::Engine& engine) : credit_free(engine) {}
    cluster::ReliableEndpoint* ep = nullptr;
    int credits = 0;
    bool pump_running = false;
    std::uint32_t next_corr = 1;
    std::map<std::uint32_t, std::shared_ptr<PendingCall>> pending;
    /// Correlation ids the peer cancelled, FIFO-bounded.
    std::set<std::uint32_t> cancelled;
    std::deque<std::uint32_t> cancelled_order;
    sim::Trigger credit_free;
  };

  /// Single-owner RAII holder of one taken request credit. Every call() exit
  /// edge — send failure, timeout, cancel, response, or any future early
  /// co_return — returns the credit exactly once through this guard, so no
  /// control-flow change can silently shrink a peer's pool.
  class CreditGuard {
   public:
    explicit CreditGuard(PeerState* ps) : ps_(ps) { --ps_->credits; }
    ~CreditGuard() { release(); }
    CreditGuard(const CreditGuard&) = delete;
    CreditGuard& operator=(const CreditGuard&) = delete;
    void release() {
      if (ps_ == nullptr) return;
      ++ps_->credits;
      ps_->credit_free.notify();
      ps_ = nullptr;
    }

   private:
    PeerState* ps_;
  };

  [[nodiscard]] Result<PeerState*> peer_state(int peer);
  [[nodiscard]] sim::Task<void> pump(PeerState* ps, int peer);
  void dispatch(PeerState* ps, int peer, std::vector<std::uint8_t> frame);
  [[nodiscard]] sim::Task<void> serve(PeerState* ps, int peer,
                                      std::vector<std::uint8_t> frame);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> dispatch_local(
      std::uint16_t method, std::span<const std::uint8_t> payload,
      CallOptions opts);
  void note_cancel(PeerState* ps, std::uint32_t corr);
  void record_span(const RpcSpan& span);

  cluster::TcCluster& cluster_;
  int chip_;
  RpcConfig cfg_;
  bool stopped_ = false;
  std::map<std::uint16_t, Handler> handlers_;
  std::map<int, std::unique_ptr<PeerState>> peers_;
  RpcStats stats_;
  std::vector<RpcSpan> spans_;
  std::uint64_t spans_dropped_ = 0;
  /// Liveness token for detached deadline timers (the node may die first).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Wire header, serialized little-endian at the front of every frame.
struct RpcHeader {
  enum class Kind : std::uint8_t {
    kRequest = 0,
    kResponse = 1,
    kError = 2,   ///< payload = error message bytes, status = ErrorCode
    kCancel = 3,  ///< corr identifies the call to suppress
  };
  static constexpr std::size_t kWireBytes = 24;

  Kind kind = Kind::kRequest;
  std::uint8_t channel = 0;
  std::uint16_t method = 0;
  std::uint32_t corr = 0;
  std::int64_t deadline_ps = 0;  ///< absolute simulated time
  std::uint32_t status = 0;      ///< ErrorCode + 1 on kError frames, else 0
  std::uint32_t reserved = 0;

  void encode(std::uint8_t* out) const;
  static RpcHeader decode(const std::uint8_t* in);
};

static_assert(RpcNode::kMaxPayloadBytes ==
              cluster::ReliableEndpoint::kMaxPayloadBytes - RpcHeader::kWireBytes);

/// Emit every node's client/server spans as Perfetto slices: one process
/// per node ("chip N rpc"), tid 0 = client waits, tid 1 = handler runs.
void export_rpc_spans(telemetry::ChromeTraceWriter& writer,
                      std::span<RpcNode* const> nodes, int first_pid = 9000);

/// export_rpc_spans straight to a loadable trace file.
Status write_rpc_trace(std::span<RpcNode* const> nodes, const std::string& path);

}  // namespace tcc::tcsvc

#include "tcsvc/kv.hpp"

#include <algorithm>
#include <cstring>

#include "common/strings.hpp"
#include "tcsvc/membership.hpp"
#include "tcsvc/metrics_internal.hpp"

namespace tcc::tcsvc {

// -------------------------------------------------------------- ShardMap --

namespace {
/// 64-bit finalizer (MurmurHash3 fmix64): decorrelates structured inputs.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Rendezvous weight of (shard, server) under `seed`.
std::uint64_t hrw_score(std::uint64_t seed, int shard, int server) {
  return mix64(seed ^ mix64(static_cast<std::uint64_t>(shard) * 0x9e3779b97f4a7c15ull + 1) ^
               mix64(static_cast<std::uint64_t>(server) * 0xbf58476d1ce4e5b9ull + 2));
}
}  // namespace

ShardMap::ShardMap(std::vector<int> servers, int shards, std::uint64_t seed,
                   std::map<int, int> fault_domains)
    : servers_(std::move(servers)), seed_(seed), domains_(std::move(fault_domains)) {
  TCC_ASSERT(!servers_.empty(), "ShardMap needs at least one server");
  TCC_ASSERT(shards > 0, "ShardMap needs at least one shard");
  std::sort(servers_.begin(), servers_.end());
  primary_.resize(static_cast<std::size_t>(shards));
  replica_.resize(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    int best = -1, second = -1;
    std::uint64_t best_score = 0, second_score = 0;
    for (int server : servers_) {
      const std::uint64_t score = hrw_score(seed_, s, server);
      // Ties cannot deadlock placement: lower chip id wins deterministically.
      if (best < 0 || score > best_score) {
        second = best;
        second_score = best_score;
        best = server;
        best_score = score;
      } else if (second < 0 || score > second_score) {
        second = server;
        second_score = score;
      }
    }
    // Domain-aware replica: prefer the best-scored server outside the
    // primary's fault domain, so a domain loss (a torus plane cut) never
    // takes both copies. Falls back to the overall runner-up when every
    // other server shares the primary's domain.
    if (!domains_.empty() && second >= 0 && domain_of(second) == domain_of(best)) {
      int alt = -1;
      std::uint64_t alt_score = 0;
      for (int server : servers_) {
        if (server == best || domain_of(server) == domain_of(best)) continue;
        const std::uint64_t score = hrw_score(seed_, s, server);
        if (alt < 0 || score > alt_score) {
          alt = server;
          alt_score = score;
        }
      }
      if (alt >= 0) second = alt;
    }
    primary_[static_cast<std::size_t>(s)] = best;
    replica_[static_cast<std::size_t>(s)] = second;
  }
}

ShardMap ShardMap::from_plan(const topology::ClusterPlan& plan,
                             std::vector<int> servers, int shards) {
  std::map<int, int> domains;
  for (int chip : servers) domains[chip] = plan.fault_domain_of(chip);
  return ShardMap(std::move(servers), shards, plan.config().seed, std::move(domains));
}

int ShardMap::shard_of(std::string_view key) const {
  return static_cast<int>(fnv1a(key) % static_cast<std::uint64_t>(shards()));
}

int ShardMap::primary(int shard) const {
  return primary_.at(static_cast<std::size_t>(shard));
}

int ShardMap::replica(int shard) const {
  return replica_.at(static_cast<std::size_t>(shard));
}

int ShardMap::domain_of(int chip) const {
  const auto it = domains_.find(chip);
  return it == domains_.end() ? -1 : it->second;
}

int ShardMap::partner_of(int shard, int chip) const {
  const int p = primary(shard);
  const int r = replica(shard);
  if (chip == p) return r;
  if (chip == r) return p;
  return -1;
}

std::string ShardMap::describe() const {
  std::string out;
  for (int s = 0; s < shards(); ++s) {
    out += strprintf("shard %2d: primary chip %d, replica chip %d\n", s,
                     primary(s), replica(s));
  }
  return out;
}

// ------------------------------------------------------------ wire codec --

namespace {
/// kKvPut body: u16 key length, key bytes, value bytes.
std::vector<std::uint8_t> encode_put(std::string_view key,
                                     std::span<const std::uint8_t> value) {
  std::vector<std::uint8_t> body(2 + key.size() + value.size());
  const auto klen = static_cast<std::uint16_t>(key.size());
  std::memcpy(body.data(), &klen, 2);
  std::memcpy(body.data() + 2, key.data(), key.size());
  std::copy(value.begin(), value.end(), body.begin() + 2 + key.size());
  return body;
}

/// kKvReplicate body: u16 key length, u64 version, i64 expires_at_ps,
/// key bytes, value bytes.
std::vector<std::uint8_t> encode_replicate(std::string_view key,
                                           std::uint64_t version,
                                           std::span<const std::uint8_t> value,
                                           std::int64_t expires_at_ps = 0) {
  std::vector<std::uint8_t> body(18 + key.size() + value.size());
  const auto klen = static_cast<std::uint16_t>(key.size());
  std::memcpy(body.data(), &klen, 2);
  std::memcpy(body.data() + 2, &version, 8);
  std::memcpy(body.data() + 10, &expires_at_ps, 8);
  std::memcpy(body.data() + 18, key.data(), key.size());
  std::copy(value.begin(), value.end(), body.begin() + 18 + key.size());
  return body;
}

bool decode_put(std::span<const std::uint8_t> body, std::string_view& key,
                std::span<const std::uint8_t>& value) {
  if (body.size() < 2) return false;
  std::uint16_t klen;
  std::memcpy(&klen, body.data(), 2);
  if (body.size() < 2u + klen) return false;
  key = std::string_view(reinterpret_cast<const char*>(body.data()) + 2, klen);
  value = body.subspan(2u + klen);
  return true;
}

bool decode_replicate(std::span<const std::uint8_t> body, std::string_view& key,
                      std::uint64_t& version, std::int64_t& expires_at_ps,
                      std::span<const std::uint8_t>& value) {
  if (body.size() < 18) return false;
  std::uint16_t klen;
  std::memcpy(&klen, body.data(), 2);
  std::memcpy(&version, body.data() + 2, 8);
  std::memcpy(&expires_at_ps, body.data() + 10, 8);
  if (body.size() < 18u + klen) return false;
  key = std::string_view(reinterpret_cast<const char*>(body.data()) + 18, klen);
  value = body.subspan(18u + klen);
  return true;
}

std::vector<std::uint8_t> encode_version(std::uint64_t version) {
  std::vector<std::uint8_t> out(8);
  std::memcpy(out.data(), &version, 8);
  return out;
}
}  // namespace

// ------------------------------------------------------------- KvService --

KvService::KvService(cluster::TcCluster& cluster, RpcNode& rpc, ShardMap map,
                     KvConfig cfg)
    : cluster_(cluster),
      rpc_(rpc),
      map_(std::move(map)),
      cfg_(cfg),
      store_(static_cast<std::size_t>(map_.shards())),
      next_version_(static_cast<std::size_t>(map_.shards()), 0) {}

void KvService::start() {
  rpc_.handle(kKvGet, [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
    return on_get(ctx, b);
  });
  rpc_.handle(kKvPut, [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
    return on_put(ctx, b);
  });
  rpc_.handle(kKvReplicate,
              [this](const RpcContext& ctx, std::span<const std::uint8_t> b) {
                return on_replicate(ctx, b);
              });
}

const ShardMap& KvService::shard_map() const {
  return membership_ != nullptr ? membership_->map() : map_;
}

bool KvService::acting_primary(int shard) const {
  const ShardMap& m = shard_map();
  const int self = rpc_.chip();
  const int p = m.primary(shard);
  if (p == self) return true;
  return m.replica(shard) == self && !cluster_.driver(self).peer_alive(p);
}

std::vector<KvService::ExportedEntry> KvService::export_shard(
    int shard, std::string_view after_key, std::uint32_t max_bytes) const {
  std::vector<ExportedEntry> out;
  const auto& slot = store_.at(static_cast<std::size_t>(shard));
  auto it = after_key.empty() ? slot.begin() : slot.upper_bound(after_key);
  std::uint32_t bytes = 0;
  for (; it != slot.end(); ++it) {
    if (entry_expired(it->second)) continue;
    const auto sz = static_cast<std::uint32_t>(it->first.size() +
                                               it->second.value.size() + 16);
    if (!out.empty() && bytes + sz > max_bytes) break;
    out.push_back(ExportedEntry{it->first, it->second.version, it->second.value,
                                it->second.expires_at_ps});
    bytes += sz;
  }
  return out;
}

void KvService::apply_entry(int shard, std::string_view key,
                            std::uint64_t version,
                            std::span<const std::uint8_t> value,
                            std::int64_t expires_at_ps) {
  auto& slot = store_.at(static_cast<std::size_t>(shard));
  auto it = slot.find(key);
  // Version gate: streamed chunks, dual-written forwards and tcrel replays
  // may re-deliver the same (key, version) — only newer versions apply.
  if (it == slot.end() || version > it->second.version) {
    slot[std::string(key)] =
        Entry{version, {value.begin(), value.end()}, expires_at_ps};
  }
  auto& next = next_version_[static_cast<std::size_t>(shard)];
  next = std::max(next, version);
}

bool KvService::entry_expired(const Entry& e) const {
  return e.expires_at_ps > 0 &&
         cluster_.engine().now().count() >= e.expires_at_ps;
}

std::optional<KvService::ReadEntry> KvService::read_entry(int shard,
                                                          std::string_view key,
                                                          bool* expired) {
  if (expired != nullptr) *expired = false;
  auto& slot = store_.at(static_cast<std::size_t>(shard));
  auto it = slot.find(key);
  if (it == slot.end()) return std::nullopt;
  if (entry_expired(it->second)) {
    // Lazy expiry: the read that observes the deadline removes the entry.
    // Every copy runs the same sim clock and carries the same absolute
    // deadline, so all copies agree on visibility without coordination.
    slot.erase(it);
    if (expired != nullptr) *expired = true;
    return std::nullopt;
  }
  return ReadEntry{it->second.version, it->second.value,
                   it->second.expires_at_ps};
}

std::uint64_t KvService::write_entry(int shard, std::string_view key,
                                     std::span<const std::uint8_t> value,
                                     std::int64_t expires_at_ps) {
  const std::uint64_t version = ++next_version_[static_cast<std::size_t>(shard)];
  store_.at(static_cast<std::size_t>(shard))[std::string(key)] =
      Entry{version, {value.begin(), value.end()}, expires_at_ps};
  return version;
}

std::uint64_t KvService::sweep_expired() {
  std::uint64_t swept = 0;
  for (auto& slot : store_) {
    for (auto it = slot.begin(); it != slot.end();) {
      if (entry_expired(it->second)) {
        it = slot.erase(it);
        ++swept;
      } else {
        ++it;
      }
    }
  }
  return swept;
}

void KvService::reset_shard(int shard) {
  store_.at(static_cast<std::size_t>(shard)).clear();
  next_version_[static_cast<std::size_t>(shard)] = 0;
}

void KvService::drop_unowned() {
  const ShardMap& m = shard_map();
  const int self = rpc_.chip();
  for (int s = 0; s < m.shards(); ++s) {
    if (m.primary(s) == self || m.replica(s) == self) continue;
    if (!store_[static_cast<std::size_t>(s)].empty()) reset_shard(s);
  }
}

void KvService::clear_degraded_if_restored() {
  if (stats_.degraded_open == 0) return;
  const ShardMap& m = shard_map();
  const int self = rpc_.chip();
  for (int s = 0; s < m.shards(); ++s) {
    const int partner = m.partner_of(s, self);
    if (partner >= 0 && !cluster_.driver(self).peer_alive(partner)) {
      return;  // an owned shard still lacks a live partner — stay degraded
    }
  }
  // Every shard this node owns is fully replicated again (a rebalance
  // re-seeded the lost copies), so the degraded window closes; the
  // cumulative degraded_writes history is preserved.
  TCC_METRIC(detail::metrics().kv_degraded_open.add(
      -static_cast<double>(stats_.degraded_open)));
  stats_.degraded_open = 0;
}

std::uint64_t KvService::entries() const {
  std::uint64_t n = 0;
  for (const auto& shard : store_) n += shard.size();
  return n;
}

std::optional<std::vector<std::uint8_t>> KvService::peek(
    std::string_view key) const {
  const auto& shard = store_[static_cast<std::size_t>(shard_map().shard_of(key))];
  auto it = shard.find(key);
  if (it == shard.end() || entry_expired(it->second)) return std::nullopt;
  return it->second.value;
}

std::uint64_t KvService::version_of(std::string_view key) const {
  const auto& shard = store_[static_cast<std::size_t>(shard_map().shard_of(key))];
  auto it = shard.find(key);
  return it == shard.end() || entry_expired(it->second) ? 0
                                                        : it->second.version;
}

sim::Task<Result<std::vector<std::uint8_t>>> KvService::on_get(
    const RpcContext&, std::span<const std::uint8_t> body) {
  co_await cluster_.engine().delay(cfg_.get_compute);
  const std::string_view key(reinterpret_cast<const char*>(body.data()),
                             body.size());
  const int shard = shard_map().shard_of(key);
  if (!acting_primary(shard)) {
    ++stats_.not_primary_rejects;
    TCC_METRIC(detail::metrics().kv_not_primary.inc());
    co_return make_error(ErrorCode::kFailedPrecondition, "not primary for shard");
  }
  if (shard_map().primary(shard) != rpc_.chip()) {
    ++stats_.failover_serves;
    TCC_METRIC(detail::metrics().kv_failover_serves.inc());
  }
  ++stats_.gets;
  TCC_METRIC(detail::metrics().kv_gets.inc());
  bool expired = false;
  auto entry = read_entry(shard, key, &expired);
  if (expired) {
    TCC_METRIC(detail::metrics().kv_expired_reads.inc());
  }
  if (!entry.has_value()) {
    ++stats_.misses;
    TCC_METRIC(detail::metrics().kv_misses.inc());
    co_return make_error(ErrorCode::kNotFound, "no such key");
  }
  co_return std::move(entry->value);
}

sim::Task<Result<std::vector<std::uint8_t>>> KvService::on_put(
    const RpcContext& ctx, std::span<const std::uint8_t> body) {
  co_await cluster_.engine().delay(cfg_.put_compute);
  std::string_view key;
  std::span<const std::uint8_t> value;
  if (!decode_put(body, key, value) || key.empty()) {
    co_return make_error(ErrorCode::kInvalidArgument, "malformed put");
  }
  const int shard = shard_map().shard_of(key);
  if (!acting_primary(shard)) {
    ++stats_.not_primary_rejects;
    TCC_METRIC(detail::metrics().kv_not_primary.inc());
    co_return make_error(ErrorCode::kFailedPrecondition, "not primary for shard");
  }
  const int self = rpc_.chip();
  if (shard_map().primary(shard) != self) {
    ++stats_.failover_serves;
    TCC_METRIC(detail::metrics().kv_failover_serves.inc());
  }
  // Capture the replication fan-out NOW, before any suspension point: a
  // rebalance commit landing mid-handler must not let this write slip
  // between the snapshot stream (which ended before commit) and the
  // dual-write (which we are about to perform from this captured list).
  const int partner = shard_map().partner_of(shard, self);
  const std::vector<int> forwards =
      membership_ != nullptr ? membership_->forward_targets(shard)
                             : std::vector<int>{};

  const std::uint64_t version = ++next_version_[static_cast<std::size_t>(shard)];
  store_[static_cast<std::size_t>(shard)][std::string(key)] =
      Entry{version, {value.begin(), value.end()}};
  ++stats_.puts;
  TCC_METRIC(detail::metrics().kv_puts.inc());

  // Synchronous replication: ack the client only once the partner applied
  // the write — or is already judged dead, in which case the single
  // surviving copy IS the store (counted as a degraded ack).
  if (partner >= 0) {
    if (cluster_.driver(self).peer_alive(partner)) {
      const Picoseconds repl_deadline =
          std::min(ctx.deadline,
                   cluster_.engine().now() + cfg_.replicate_deadline);
      CallOptions opts;
      opts.channel = cfg_.replication_channel;
      opts.deadline = repl_deadline;
      auto r = co_await rpc_.call(partner, kKvReplicate,
                                  encode_replicate(key, version, value), opts);
      if (r.ok()) {
        ++stats_.replications_out;
      } else if (!cluster_.driver(self).peer_alive(partner)) {
        // The partner died mid-replication; the keepalive verdict arrived
        // first. Ack on the surviving copy.
        ++stats_.degraded_writes;
        ++stats_.degraded_open;
        TCC_METRIC(detail::metrics().kv_degraded_writes.inc());
        TCC_METRIC(detail::metrics().kv_degraded_open.add(1.0));
      } else {
        // Partner alive but the sub-call failed (e.g. its deadline expired
        // under load): refuse the ack so the client retries — an acked
        // write must exist on both live copies.
        co_return make_error(ErrorCode::kUnavailable,
                             "replication failed: " + r.error().to_string());
      }
    } else {
      ++stats_.degraded_writes;
      ++stats_.degraded_open;
      TCC_METRIC(detail::metrics().kv_degraded_writes.inc());
      TCC_METRIC(detail::metrics().kv_degraded_open.add(1.0));
    }
  }

  // Dual-write during migration: while this node is a rebalance stream
  // source, the ack additionally requires the write on every future owner —
  // the snapshot stream only covers keys behind its cursor. Version gating
  // dedupes entries that travel both paths.
  for (const int target : forwards) {
    if (target == self || target == partner) continue;
    if (!cluster_.driver(self).peer_alive(target)) continue;  // mid-rebalance death
    CallOptions opts;
    opts.channel = cfg_.replication_channel;
    opts.deadline = std::min(ctx.deadline,
                             cluster_.engine().now() + cfg_.replicate_deadline);
    auto r = co_await rpc_.call(target, kKvReplicate,
                                encode_replicate(key, version, value), opts);
    if (!r.ok() && cluster_.driver(self).peer_alive(target)) {
      co_return make_error(ErrorCode::kUnavailable,
                           "dual-write failed: " + r.error().to_string());
    }
    membership_->note_dual_write();
    TCC_METRIC(detail::metrics().rebalance_dual_writes.inc());
  }
  co_return encode_version(version);
}

sim::Task<Result<std::vector<std::uint8_t>>> KvService::on_replicate(
    const RpcContext&, std::span<const std::uint8_t> body) {
  co_await cluster_.engine().delay(cfg_.put_compute);
  std::string_view key;
  std::uint64_t version = 0;
  std::int64_t expires_at_ps = 0;
  std::span<const std::uint8_t> value;
  if (!decode_replicate(body, key, version, expires_at_ps, value) ||
      key.empty()) {
    co_return make_error(ErrorCode::kInvalidArgument, "malformed replicate");
  }
  const int shard = shard_map().shard_of(key);
  apply_entry(shard, key, version, value, expires_at_ps);
  ++stats_.replications_in;
  TCC_METRIC(detail::metrics().kv_replications.inc());
  co_return std::vector<std::uint8_t>{};
}

// -------------------------------------------------------------- KvClient --

KvClient::KvClient(cluster::TcCluster& cluster, RpcNode& rpc, ShardMap map,
                   KvConfig cfg)
    : cluster_(cluster), rpc_(rpc), map_(std::move(map)), cfg_(cfg) {}

const ShardMap& KvClient::shard_map() const {
  return membership_ != nullptr ? membership_->map() : map_;
}

sim::Task<Result<std::vector<std::uint8_t>>> KvClient::request(
    std::uint16_t method, int shard, std::vector<std::uint8_t> payload,
    Picoseconds deadline) {
  sim::Engine& engine = cluster_.engine();
  const int self = rpc_.chip();
  auto alive = [&](int chip) {
    return chip == self || cluster_.driver(self).peer_alive(chip);
  };

  bool prefer_replica = false;
  for (;;) {
    // Placement is re-resolved per attempt: a rebalance committing between
    // attempts (the old owner answers kFailedPrecondition at cutover)
    // reroutes the very next retry to the new owner.
    const ShardMap& m = shard_map();
    const int p = m.primary(shard);
    const int r = m.replica(shard);
    int target = p;
    if ((prefer_replica || !alive(p)) && r >= 0) {
      target = r;
      ++stats_.failover_routes;
    }
    CallOptions opts;
    opts.channel = cfg_.client_channel;
    opts.deadline = std::min(deadline, engine.now() + cfg_.attempt_deadline);
    auto result = co_await rpc_.call(target, method, payload, opts);
    if (result.ok()) co_return result;
    const ErrorCode code = result.error().code;
    // Semantic outcomes are final; transport/availability trouble retries
    // against the shard's other copy until the deadline runs out.
    if (code == ErrorCode::kNotFound || code == ErrorCode::kInvalidArgument) {
      co_return result;
    }
    if (engine.now() + cfg_.retry_backoff >= deadline) co_return result;
    ++stats_.retries;
    prefer_replica = (target == p);  // alternate copies across attempts
    co_await engine.delay(cfg_.retry_backoff);
  }
}

sim::Task<Result<std::vector<std::uint8_t>>> KvClient::get(
    std::string_view key, std::optional<Picoseconds> deadline) {
  ++stats_.gets;
  const Picoseconds abs =
      deadline.value_or(cluster_.engine().now() + cfg_.op_deadline);
  std::vector<std::uint8_t> payload(key.begin(), key.end());
  co_return co_await request(kKvGet, shard_map().shard_of(key),
                             std::move(payload), abs);
}

sim::Task<Result<std::uint64_t>> KvClient::put(
    std::string_view key, std::span<const std::uint8_t> value,
    std::optional<Picoseconds> deadline) {
  ++stats_.puts;
  const Picoseconds abs =
      deadline.value_or(cluster_.engine().now() + cfg_.op_deadline);
  auto result = co_await request(kKvPut, shard_map().shard_of(key),
                                 encode_put(key, value), abs);
  if (!result.ok()) co_return result.error();
  if (result.value().size() != 8) {
    co_return make_error(ErrorCode::kProtocolViolation, "bad put response");
  }
  std::uint64_t version = 0;
  std::memcpy(&version, result.value().data(), 8);
  co_return version;
}

}  // namespace tcc::tcsvc

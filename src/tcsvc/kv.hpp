// tcsvc KV: a sharded, primary/replica-replicated in-memory key-value
// service over the RPC layer — the repo's first end-to-end serving workload
// (the "millions of users" tier of the ROADMAP north star, scaled to the
// simulator).
//
// Placement is consistent hashing from the cluster plan: keys hash (FNV-1a)
// onto a fixed shard ring, and each shard picks its primary and replica by
// rendezvous (highest-random-weight) hashing over the server set, seeded
// from the plan's master seed — deterministic, uniform, and stable under
// server-set changes (only the shards owned by a removed server move).
//
// Replication and failover lean on the fault machinery below instead of
// reinventing it:
//
//  * a put applies on the primary, then replicates synchronously to the
//    replica over a dedicated RPC channel; the client is acked only once
//    both copies exist (or the replica is already judged dead — a counted
//    "degraded" ack). No acknowledged write is lost when either single
//    node dies.
//  * failover is epoch-aware by construction: the TcDriver keepalive
//    verdict that declares the primary dead is the same edge that bumps
//    the tcrel membership epoch, so a promoted replica starts serving in
//    the first epoch after the fault. In-flight client frames ride tcrel's
//    DeliveryPolicy::kReplay across the bump; writes the dead primary
//    never acked surface as client timeouts and are retried against the
//    replica (kFlush trades that replay for bounded catch-up — same knob,
//    RelConfig::policy).
//  * the replica promotes itself per-request ("acting primary": configured
//    primary, or replica while the primary is judged dead) and the client
//    routes the same way, so there is no separate view-change protocol to
//    keep consistent — the membership epoch IS the view.
//
// Versions are per-shard monotonic counters assigned by the acting primary;
// replica apply is version-gated, so tcrel replays and client retries are
// idempotent.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tcsvc/rpc.hpp"
#include "topology/plan.hpp"

namespace tcc::tcsvc {

class MembershipAgent;  // membership.hpp (layered above the KV service)

/// RPC method ids of the KV protocol.
inline constexpr std::uint16_t kKvGet = 1;
inline constexpr std::uint16_t kKvPut = 2;
inline constexpr std::uint16_t kKvReplicate = 3;

/// Consistent-hash shard placement over a server set.
class ShardMap {
 public:
  /// `servers` are the serving chips (ascending); `seed` decorrelates the
  /// rendezvous scores from the key hash. `fault_domains` (chip -> domain)
  /// optionally makes placement domain-aware: each shard's replica becomes
  /// the best-scored server in a *different* domain than its primary, so no
  /// single domain holds both copies. When no out-of-domain server exists
  /// (or the map is empty) the overall runner-up is kept — the original
  /// domain-blind behaviour.
  ShardMap(std::vector<int> servers, int shards, std::uint64_t seed,
           std::map<int, int> fault_domains = {});

  /// Placement seeded from the cluster plan's master seed, so the shard
  /// layout is as reproducible as every other derived stream. Fault domains
  /// come from the plan too: a server's domain is its Supernode's coordinate
  /// along the outermost topology dimension (the z-plane of a 3-D torus), so
  /// a plane cut never takes both copies of a shard.
  static ShardMap from_plan(const topology::ClusterPlan& plan,
                            std::vector<int> servers, int shards);

  [[nodiscard]] int shards() const { return static_cast<int>(primary_.size()); }
  [[nodiscard]] const std::vector<int>& servers() const { return servers_; }

  [[nodiscard]] int shard_of(std::string_view key) const;
  [[nodiscard]] int primary(int shard) const;
  /// The replica chip, or -1 with a single server (no replication possible).
  [[nodiscard]] int replica(int shard) const;
  /// The other member of a shard's (primary, replica) pair, or -1.
  [[nodiscard]] int partner_of(int shard, int chip) const;

  /// Fault domain of a server chip, or -1 when placement is domain-blind.
  [[nodiscard]] int domain_of(int chip) const;

  /// Printable placement table (examples, diag).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<int> servers_;
  std::uint64_t seed_;
  std::map<int, int> domains_;
  std::vector<int> primary_;
  std::vector<int> replica_;
};

/// Shared client/server tuning.
struct KvConfig {
  int shards = 16;
  /// Default absolute-deadline budget of one client operation (covers every
  /// retry and failover reroute inside it).
  Picoseconds op_deadline = Picoseconds::from_us(500.0);
  /// Budget of a single attempt within an operation: an attempt against a
  /// node that died mid-request times out after this and the retry loop
  /// reroutes, instead of one dead target eating the whole op budget.
  Picoseconds attempt_deadline = Picoseconds::from_us(60.0);
  /// Replication sub-call budget (must leave room for a client retry).
  Picoseconds replicate_deadline = Picoseconds::from_us(100.0);
  /// Modeled CPU service time per op (hash + lookup / store).
  Picoseconds get_compute = Picoseconds::from_ns(150.0);
  Picoseconds put_compute = Picoseconds::from_ns(300.0);
  /// Backoff between client retry attempts (lets a keepalive verdict or an
  /// epoch sync land instead of hammering a dying node).
  Picoseconds retry_backoff = Picoseconds::from_us(2.0);
  /// Logical RPC channels: client traffic and replication share each peer
  /// pair without interleaving their correlation spaces.
  std::uint8_t client_channel = 0;
  std::uint8_t replication_channel = 1;
};

/// Server-side counters.
struct KvStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t misses = 0;
  std::uint64_t replications_out = 0;  ///< replicate calls issued as primary
  std::uint64_t replications_in = 0;   ///< replicate frames applied as replica
  std::uint64_t not_primary_rejects = 0;
  std::uint64_t degraded_writes = 0;   ///< acked with the partner judged dead (cumulative)
  std::uint64_t degraded_open = 0;     ///< degraded acks not yet re-replicated; cleared
                                       ///< once every owned shard has a live partner again
  std::uint64_t failover_serves = 0;   ///< ops served while acting for a dead primary
};

/// One node's slice of the store: registers the KV handlers on an RpcNode
/// and serves every shard this node is acting primary or replica for.
class KvService {
 public:
  KvService(cluster::TcCluster& cluster, RpcNode& rpc, ShardMap map,
            KvConfig cfg = {});

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  /// Register the kKvGet/kKvPut/kKvReplicate handlers. Pumps start when the
  /// RpcNode starts; stop serving via RpcNode::stop().
  void start();

  [[nodiscard]] int chip() const { return rpc_.chip(); }
  [[nodiscard]] const KvStats& stats() const { return stats_; }
  /// The placement currently in force: the membership agent's map once one
  /// is attached (it advances with each committed epoch), else the map the
  /// service was built with.
  [[nodiscard]] const ShardMap& shard_map() const;

  // ---- membership hooks ---------------------------------------------------
  /// Attach the node's membership agent: placement becomes epoch-driven and
  /// acked writes are dual-written to migration targets while this node is a
  /// rebalance stream source (MembershipAgent::attach_service calls this).
  void set_membership(MembershipAgent* membership) { membership_ = membership; }

  /// One streamed entry of a shard migration.
  struct ExportedEntry {
    std::string key;
    std::uint64_t version = 0;
    std::vector<std::uint8_t> value;
    std::int64_t expires_at_ps = 0;  ///< absolute sim time; 0 = never
  };
  /// Keys of `shard` strictly after `after_key` (empty = from the start), in
  /// key order, stopping before `max_bytes` of key+value payload (always at
  /// least one entry when any remain) — the bounded-chunk export cursor.
  [[nodiscard]] std::vector<ExportedEntry> export_shard(
      int shard, std::string_view after_key, std::uint32_t max_bytes) const;
  /// Version-gated apply of a streamed/forwarded entry (idempotent; also the
  /// replica write path). `expires_at_ps` is the absolute expiry the acting
  /// primary assigned (0 = never) — copies never re-derive it, so every
  /// replica agrees on the key's visible lifetime.
  void apply_entry(int shard, std::string_view key, std::uint64_t version,
                   std::span<const std::uint8_t> value,
                   std::int64_t expires_at_ps = 0);
  /// Drop every entry of `shard` and restart its version sequence — a
  /// migration target clears any stale copy before the stream begins.
  void reset_shard(int shard);
  /// Post-commit hooks: drop shards this node no longer owns under the new
  /// map, and close the degraded-write window if every owned shard has a
  /// live partner again.
  void drop_unowned();
  void clear_degraded_if_restored();

  // ---- store-layer hooks (src/tcstore) ------------------------------------
  /// The attached membership agent, nullptr before attach_service — layered
  /// services (tcstore) read dual-write targets through it.
  [[nodiscard]] MembershipAgent* membership() const { return membership_; }

  /// One expiry-aware read. A key past its expiry reads as absent and is
  /// lazily erased (the periodic sweep handles keys nobody reads); whether a
  /// copy has physically erased an expired entry is unobservable, because
  /// every read re-checks the absolute expiry under the same sim clock.
  struct ReadEntry {
    std::uint64_t version = 0;
    std::vector<std::uint8_t> value;
    std::int64_t expires_at_ps = 0;
  };
  [[nodiscard]] std::optional<ReadEntry> read_entry(int shard,
                                                    std::string_view key,
                                                    bool* expired = nullptr);
  /// Primary-side versioned write (the store-op path): assigns the shard's
  /// next version, stores value + absolute expiry, returns the version.
  std::uint64_t write_entry(int shard, std::string_view key,
                            std::span<const std::uint8_t> value,
                            std::int64_t expires_at_ps);
  /// Erase every entry whose expiry has passed, across all shards this node
  /// holds; returns the number erased (the periodic TTL sweep).
  std::uint64_t sweep_expired();

  // ---- introspection (tests, diag) ---------------------------------------
  [[nodiscard]] std::uint64_t entries() const;
  /// Local lookup without RPC or timing — test oracle for replication.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> peek(
      std::string_view key) const;
  [[nodiscard]] std::uint64_t version_of(std::string_view key) const;
  /// True when this node currently serves `shard` (configured primary, or
  /// replica with the primary judged dead).
  [[nodiscard]] bool acting_primary(int shard) const;

 private:
  struct Entry {
    std::uint64_t version = 0;
    std::vector<std::uint8_t> value;
    std::int64_t expires_at_ps = 0;  ///< absolute; 0 = never expires
  };

  [[nodiscard]] bool entry_expired(const Entry& e) const;

  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_get(
      const RpcContext& ctx, std::span<const std::uint8_t> body);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_put(
      const RpcContext& ctx, std::span<const std::uint8_t> body);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> on_replicate(
      const RpcContext& ctx, std::span<const std::uint8_t> body);

  cluster::TcCluster& cluster_;
  RpcNode& rpc_;
  ShardMap map_;
  KvConfig cfg_;
  MembershipAgent* membership_ = nullptr;
  /// shard -> ordered key map (std::map: deterministic iteration).
  std::vector<std::map<std::string, Entry, std::less<>>> store_;
  /// Highest version assigned or applied per shard; a promoted replica
  /// continues the sequence past everything it has seen.
  std::vector<std::uint64_t> next_version_;
  KvStats stats_;
};

/// Client-side counters.
struct KvClientStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t retries = 0;
  std::uint64_t failover_routes = 0;  ///< requests routed to the replica
};

/// Routing client: hashes keys to shards, targets the acting primary, and
/// fails over to the replica on a dead-peer verdict or a failed attempt —
/// retrying within the operation deadline.
class KvClient {
 public:
  KvClient(cluster::TcCluster& cluster, RpcNode& rpc, ShardMap map,
           KvConfig cfg = {});

  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> get(
      std::string_view key, std::optional<Picoseconds> deadline = std::nullopt);
  /// Returns the version the acting primary assigned.
  [[nodiscard]] sim::Task<Result<std::uint64_t>> put(
      std::string_view key, std::span<const std::uint8_t> value,
      std::optional<Picoseconds> deadline = std::nullopt);

  [[nodiscard]] const KvClientStats& stats() const { return stats_; }
  /// The placement this client routes by (the membership agent's map when
  /// attached — see KvService::shard_map()).
  [[nodiscard]] const ShardMap& shard_map() const;

  /// Attach a membership agent: routing follows committed epochs, and the
  /// retry loop re-resolves placement per attempt so a cutover that lands
  /// between attempts reroutes the very next one.
  void set_membership(const MembershipAgent* membership) {
    membership_ = membership;
  }

 private:
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> request(
      std::uint16_t method, int shard, std::vector<std::uint8_t> payload,
      Picoseconds deadline);

  cluster::TcCluster& cluster_;
  RpcNode& rpc_;
  ShardMap map_;
  KvConfig cfg_;
  const MembershipAgent* membership_ = nullptr;
  KvClientStats stats_;
};

}  // namespace tcc::tcsvc
